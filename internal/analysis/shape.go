// Package analysis provides curve-shape primitives used to check the
// paper's qualitative claims programmatically: peak location, monotonicity,
// series crossovers and relative gains. The experiment harness's "claims"
// experiment turns EXPERIMENTS.md's checklist into executable assertions.
package analysis

import (
	"errors"
	"math"
)

// ErrMismatch is returned when paired series have different lengths.
var ErrMismatch = errors.New("analysis: series length mismatch")

// PeakIndex returns the index of the maximum of ys (first one on ties) and
// false for an empty slice.
func PeakIndex(ys []float64) (int, bool) {
	if len(ys) == 0 {
		return 0, false
	}
	best := 0
	for i, y := range ys {
		if y > ys[best] {
			best = i
		}
	}
	return best, true
}

// IsUnimodal reports whether ys rises to a single peak and then falls,
// tolerating wobbles up to tol (relative to the peak value). Monotone
// series count as unimodal with the peak at an end.
func IsUnimodal(ys []float64, tol float64) bool {
	peak, ok := PeakIndex(ys)
	if !ok {
		return false
	}
	slack := tol * ys[peak]
	for i := 1; i <= peak; i++ {
		if ys[i] < ys[i-1]-slack {
			return false
		}
	}
	for i := peak + 1; i < len(ys); i++ {
		if ys[i] > ys[i-1]+slack {
			return false
		}
	}
	return true
}

// IsNonIncreasing reports whether ys never rises by more than tol (relative
// to the running level).
func IsNonIncreasing(ys []float64, tol float64) bool {
	for i := 1; i < len(ys); i++ {
		if ys[i] > ys[i-1]*(1+tol) {
			return false
		}
	}
	return true
}

// IsNonDecreasing reports whether ys never falls by more than tol.
func IsNonDecreasing(ys []float64, tol float64) bool {
	for i := 1; i < len(ys); i++ {
		if ys[i] < ys[i-1]*(1-tol) {
			return false
		}
	}
	return true
}

// RelGain returns (base-other)/base: the fractional improvement of `other`
// over `base` for lower-is-better metrics. Zero base gives 0.
func RelGain(base, other float64) float64 {
	if base == 0 {
		return 0
	}
	return (base - other) / base
}

// MaxRelGain returns the largest pointwise RelGain of b over a, and the x
// index where it occurs.
func MaxRelGain(a, b []float64) (gain float64, at int, err error) {
	if len(a) != len(b) {
		return 0, 0, ErrMismatch
	}
	gain = math.Inf(-1)
	for i := range a {
		if g := RelGain(a[i], b[i]); g > gain {
			gain, at = g, i
		}
	}
	if math.IsInf(gain, -1) {
		return 0, 0, errors.New("analysis: empty series")
	}
	return gain, at, nil
}

// CrossoverX returns the interpolated x at which series b first drops below
// series a for good (i.e., the last sign change of b-a from >= 0 to < 0),
// or false when b is below a everywhere or above a everywhere.
//
// Intended for the paper's "MOBIC starts to outperform Lowest-ID at Tx ≈
// ..." claims, where a is the baseline and b the challenger (lower wins).
func CrossoverX(xs, a, b []float64) (float64, bool) {
	if len(xs) != len(a) || len(xs) != len(b) || len(xs) == 0 {
		return 0, false
	}
	lastCross := -1
	for i := 1; i < len(xs); i++ {
		prevDiff := b[i-1] - a[i-1]
		currDiff := b[i] - a[i]
		if prevDiff >= 0 && currDiff < 0 {
			lastCross = i
		}
	}
	if lastCross < 0 {
		return 0, false
	}
	i := lastCross
	prevDiff := b[i-1] - a[i-1]
	currDiff := b[i] - a[i]
	span := prevDiff - currDiff
	if span <= 0 {
		return xs[i], true
	}
	frac := prevDiff / span
	return xs[i-1] + frac*(xs[i]-xs[i-1]), true
}

// AllBelow reports whether b is below a at every point (lower-is-better
// dominance), within a tolerance fraction of a.
func AllBelow(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if b[i] > a[i]*(1+tol) {
			return false
		}
	}
	return true
}
