package analysis

import (
	"math"
	"testing"
)

func TestPeakIndex(t *testing.T) {
	tests := []struct {
		name string
		ys   []float64
		want int
		ok   bool
	}{
		{name: "empty", ys: nil, ok: false},
		{name: "single", ys: []float64{5}, want: 0, ok: true},
		{name: "middle", ys: []float64{1, 5, 2}, want: 1, ok: true},
		{name: "first on tie", ys: []float64{5, 5, 2}, want: 0, ok: true},
		{name: "end", ys: []float64{1, 2, 3}, want: 2, ok: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, ok := PeakIndex(tt.ys)
			if ok != tt.ok || (ok && got != tt.want) {
				t.Errorf("PeakIndex = %d, %v; want %d, %v", got, ok, tt.want, tt.ok)
			}
		})
	}
}

func TestIsUnimodal(t *testing.T) {
	tests := []struct {
		name string
		ys   []float64
		tol  float64
		want bool
	}{
		{name: "clean peak", ys: []float64{1, 3, 5, 4, 2}, want: true},
		{name: "monotone up", ys: []float64{1, 2, 3}, want: true},
		{name: "monotone down", ys: []float64{3, 2, 1}, want: true},
		{name: "valley", ys: []float64{5, 1, 5}, want: false},
		{name: "wobble within tol", ys: []float64{1, 5, 4.9, 4.95, 3}, tol: 0.05, want: true},
		{name: "wobble beyond tol", ys: []float64{1, 5, 3, 4.5, 2}, tol: 0.05, want: false},
		{name: "empty", ys: nil, want: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := IsUnimodal(tt.ys, tt.tol); got != tt.want {
				t.Errorf("IsUnimodal = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestMonotonicity(t *testing.T) {
	if !IsNonIncreasing([]float64{5, 4, 4, 1}, 0) {
		t.Error("strictly falling should pass")
	}
	if IsNonIncreasing([]float64{5, 6, 4}, 0.01) {
		t.Error("20% rise should fail at 1% tol")
	}
	if !IsNonIncreasing([]float64{5, 5.1, 4}, 0.05) {
		t.Error("2% rise should pass at 5% tol")
	}
	if !IsNonDecreasing([]float64{1, 2, 2, 5}, 0) {
		t.Error("rising should pass")
	}
	if IsNonDecreasing([]float64{5, 2}, 0.1) {
		t.Error("60% fall should fail")
	}
}

func TestRelGain(t *testing.T) {
	if got := RelGain(100, 67); math.Abs(got-0.33) > 1e-9 {
		t.Errorf("RelGain = %v, want 0.33", got)
	}
	if got := RelGain(0, 5); got != 0 {
		t.Errorf("zero base = %v, want 0", got)
	}
	if got := RelGain(100, 120); got != -0.2 {
		t.Errorf("regression = %v, want -0.2", got)
	}
}

func TestMaxRelGain(t *testing.T) {
	gain, at, err := MaxRelGain([]float64{100, 200, 300}, []float64{90, 100, 280})
	if err != nil {
		t.Fatal(err)
	}
	if at != 1 || math.Abs(gain-0.5) > 1e-9 {
		t.Errorf("MaxRelGain = %v at %d, want 0.5 at 1", gain, at)
	}
	if _, _, err := MaxRelGain([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, _, err := MaxRelGain(nil, nil); err == nil {
		t.Error("empty should error")
	}
}

func TestCrossoverX(t *testing.T) {
	xs := []float64{0, 10, 20, 30}
	a := []float64{10, 10, 10, 10}

	// b crosses below a between x=10 and x=20, exactly midway.
	b := []float64{12, 11, 9, 8}
	x, ok := CrossoverX(xs, a, b)
	if !ok {
		t.Fatal("crossover not found")
	}
	if math.Abs(x-15) > 1e-9 {
		t.Errorf("crossover at %v, want 15", x)
	}

	// b below everywhere: no crossover.
	if _, ok := CrossoverX(xs, a, []float64{1, 1, 1, 1}); ok {
		t.Error("always-below should report no crossover")
	}
	// b above everywhere.
	if _, ok := CrossoverX(xs, a, []float64{20, 20, 20, 20}); ok {
		t.Error("always-above should report no crossover")
	}
	// Multiple crossings: last one wins.
	b2 := []float64{9, 12, 8, 7}
	x, ok = CrossoverX(xs, a, b2)
	if !ok || x < 10 || x > 20 {
		t.Errorf("multi-cross: got %v, %v; want in (10,20)", x, ok)
	}
	// Mismatched lengths.
	if _, ok := CrossoverX(xs, a, []float64{1}); ok {
		t.Error("length mismatch should report false")
	}
}

func TestAllBelow(t *testing.T) {
	a := []float64{10, 20, 30}
	if !AllBelow(a, []float64{9, 19, 29}, 0) {
		t.Error("strictly below should pass")
	}
	if AllBelow(a, []float64{9, 25, 29}, 0.1) {
		t.Error("25 > 20*1.1 should fail")
	}
	if !AllBelow(a, []float64{10.5, 19, 29}, 0.1) {
		t.Error("within tolerance should pass")
	}
	if AllBelow(a, []float64{1, 2}, 0) {
		t.Error("length mismatch should fail")
	}
}

func TestIsUnimodalEmpty(t *testing.T) {
	if IsUnimodal(nil, 0.05) {
		t.Error("empty series should not count as unimodal")
	}
}
