package analysis

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
)

// This file estimates how long an elected cluster stays intact, the
// C-MANET reliability-assessment companion to the stability metrics the
// simulator measures: LinkSurvival is the distance-based single-link decay
// model, ClusterSurvival composes it over a cluster's member links under
// the independent-links assumption, and MonteCarloClusterReliability drops
// that assumption's closed form and estimates the same quantity by seeded
// sampling over member placements — the estimator the simulator's measured
// residence times can be compared against.

// LinkSurvival returns the probability that a link between two nodes at
// initial distance d, closing or separating at relative speed v within
// transmission range R, still exists after t seconds. The model is the
// simplified linear worst-case decay: two nodes separating at v break the
// link after (R-d)/v seconds, and the survival probability falls linearly
// to zero over that window.
//
// Boundary semantics: t <= 0 is certain survival (the link exists now);
// d >= R means the link does not exist at all; v <= 0 with t > 0 is treated
// as the adversarial unknown-mobility case and returns 0, so the function
// is a lower bound rather than an optimistic guess.
func LinkSurvival(t, d, v, R float64) float64 {
	if t <= 0 {
		return 1
	}
	if d >= R || d < 0 || v <= 0 || R <= 0 {
		return 0
	}
	maxT := (R - d) / v
	return math.Max(0, 1-t/maxT)
}

// ClusterSurvival returns the probability that a whole cluster is still
// intact after t seconds: every member must keep its link to the head, and
// under the independent-links assumption that is the product of the member
// links' survival probabilities. dists holds each member's initial distance
// to the clusterhead; an empty cluster (a lone head) survives with
// probability 1.
func ClusterSurvival(t float64, dists []float64, v, R float64) float64 {
	p := 1.0
	for _, d := range dists {
		p *= LinkSurvival(t, d, v, R)
		if p == 0 {
			return 0
		}
	}
	return p
}

// ErrBadReliability tags reliability-parameter validation failures.
var ErrBadReliability = errors.New("analysis: invalid reliability parameters")

// ReliabilityParams configures a Monte Carlo cluster-reliability estimate.
type ReliabilityParams struct {
	// Members is the number of ordinary members attached to the head.
	Members int
	// PlacementRadius is the disc radius the members are initially placed
	// in, uniformly by area, around the head. It must not exceed Range —
	// a member outside the range was never part of the cluster.
	PlacementRadius float64
	// Range is the head's transmission range R in meters.
	Range float64
	// Speed is the pessimistic relative speed v in m/s at which every
	// member separates from the head.
	Speed float64
	// Horizon is the time t in seconds the cluster must survive.
	Horizon float64
	// Trials is the number of Monte Carlo samples.
	Trials int
	// Seed roots the sampler; equal seeds reproduce the estimate exactly.
	Seed uint64
}

// Validate checks the parameter set.
func (p ReliabilityParams) Validate() error {
	switch {
	case p.Members < 0:
		return fmt.Errorf("%w: members = %d", ErrBadReliability, p.Members)
	case p.Range <= 0:
		return fmt.Errorf("%w: range = %g m", ErrBadReliability, p.Range)
	case p.PlacementRadius <= 0 || p.PlacementRadius > p.Range:
		return fmt.Errorf("%w: placement radius %g m outside (0, %g]", ErrBadReliability, p.PlacementRadius, p.Range)
	case p.Speed <= 0:
		return fmt.Errorf("%w: speed = %g m/s", ErrBadReliability, p.Speed)
	case p.Horizon < 0:
		return fmt.Errorf("%w: horizon = %g s", ErrBadReliability, p.Horizon)
	case p.Trials <= 0:
		return fmt.Errorf("%w: trials = %d", ErrBadReliability, p.Trials)
	}
	return nil
}

// MonteCarloClusterReliability estimates the probability that a cluster of
// p.Members nodes, placed uniformly by area within p.PlacementRadius of the
// head, is still fully intact after p.Horizon seconds, with every link
// decaying per LinkSurvival. Each trial samples member distances and a
// Bernoulli survival draw per link; the estimate is the surviving fraction.
//
// The sampler is rand/v2's PCG seeded from p.Seed, so the estimate is a
// pure function of the parameters — identical inputs reproduce identical
// outputs across runs and platforms, which lets tests pin its values and
// lets an experiment sweep share one seed across curve points. Each trial
// draws exactly two variates per member (distance, survival) regardless of
// early link failure, so the draw sequence — and with it the estimate's
// determinism — is independent of the outcomes themselves; that is also
// what makes the estimate exactly monotone in Horizon at a fixed seed.
func MonteCarloClusterReliability(p ReliabilityParams) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	rng := rand.New(rand.NewPCG(p.Seed, 0xc1a5))
	survived := 0
	for trial := 0; trial < p.Trials; trial++ {
		intact := true
		for m := 0; m < p.Members; m++ {
			// Uniform by area: d = R_place * sqrt(u).
			d := p.PlacementRadius * math.Sqrt(rng.Float64())
			u := rng.Float64()
			if u >= LinkSurvival(p.Horizon, d, p.Speed, p.Range) {
				intact = false
			}
		}
		if intact {
			survived++
		}
	}
	return float64(survived) / float64(p.Trials), nil
}
