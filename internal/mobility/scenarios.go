package mobility

import (
	"fmt"
	"math"

	"mobic/internal/geom"
	"mobic/internal/sim"
)

// Highway models the paper's Section 5 "cars traveling on a highway"
// scenario: nodes are vehicles in lanes moving along +X with per-vehicle
// cruise speeds and mild speed oscillation. Vehicles that reach the end wrap
// around to the start (modeling a steady traffic stream: one car exits the
// study segment as another enters).
//
// Relative mobility between same-direction cars is small even though their
// absolute speeds are large — the regime the paper predicts MOBIC will
// exploit.
type Highway struct {
	// Length is the highway segment length in meters.
	Length float64
	// Lanes is the number of lanes; nodes are dealt round-robin.
	Lanes int
	// LaneWidth is the lateral separation between lanes in meters.
	LaneWidth float64
	// MinSpeed and MaxSpeed bound each vehicle's cruise speed in m/s.
	MinSpeed, MaxSpeed float64
	// SpeedJitter is the amplitude of slow sinusoidal speed variation as a
	// fraction of cruise speed (0 disables it).
	SpeedJitter float64
	// Bidirectional sends odd lanes in the -X direction when true.
	Bidirectional bool
}

// Name implements Model.
func (m *Highway) Name() string { return "highway" }

// Generate implements Model.
func (m *Highway) Generate(n int, duration float64, streams *sim.Streams) ([]*Trajectory, error) {
	if err := validateCommon(n, duration, streams); err != nil {
		return nil, err
	}
	if m.Length <= 0 {
		return nil, fmt.Errorf("mobility: highway length must be positive, got %g", m.Length)
	}
	if m.Lanes <= 0 {
		return nil, fmt.Errorf("mobility: highway needs at least one lane, got %d", m.Lanes)
	}
	if err := validateSpeed(m.MinSpeed, m.MaxSpeed); err != nil {
		return nil, err
	}
	laneWidth := m.LaneWidth
	if laneWidth <= 0 {
		laneWidth = 5
	}
	jitter := m.SpeedJitter
	if jitter < 0 || jitter >= 1 {
		jitter = 0
	}

	const step = 2.0 // waypoint granularity in seconds
	out := make([]*Trajectory, n)
	for i := range out {
		rng := streams.NamedIndexed("highway", i)
		lane := i % m.Lanes
		y := (float64(lane) + 0.5) * laneWidth
		dir := 1.0
		if m.Bidirectional && lane%2 == 1 {
			dir = -1
		}
		cruise := m.MinSpeed + rng.Float64()*(m.MaxSpeed-m.MinSpeed)
		if cruise < speedFloor {
			cruise = speedFloor
		}
		phase := rng.Float64() * 2 * math.Pi
		period := 20 + rng.Float64()*40 // seconds per speed oscillation
		x := rng.Float64() * m.Length

		var b Builder
		b.Append(0, geom.Point{X: x, Y: y})
		for now := step; ; now += step {
			v := cruise
			if jitter > 0 {
				v *= 1 + jitter*math.Sin(2*math.Pi*now/period+phase)
			}
			x += dir * v * step
			// Wrap around the segment.
			x = math.Mod(x, m.Length)
			if x < 0 {
				x += m.Length
			}
			b.Append(now, geom.Point{X: x, Y: y})
			if now >= duration {
				break
			}
		}
		tr, err := b.Build()
		if err != nil {
			return nil, err
		}
		out[i] = tr
	}
	return out, nil
}

// Area returns the bounding rectangle of the highway segment.
func (m *Highway) Area() geom.Rect {
	laneWidth := m.LaneWidth
	if laneWidth <= 0 {
		laneWidth = 5
	}
	return geom.NewRect(m.Length, float64(m.Lanes)*laneWidth)
}

// Conference models the paper's Section 5 "attendees in a conference hall"
// scenario: most nodes sit nearly still (chair-scale fidgeting), while a
// fraction of wanderers stroll between random positions with long pauses.
type Conference struct {
	// Area is the hall.
	Area geom.Rect
	// WandererFraction in [0,1] is the share of nodes that walk around.
	WandererFraction float64
	// WalkSpeed bounds the wanderers' strolling speed in m/s.
	WalkSpeed float64
	// SitPause is the wanderers' dwell time at each stop in seconds.
	SitPause float64
	// FidgetRadius is the seated nodes' position wobble in meters.
	FidgetRadius float64
	// FidgetEpoch is how often seated nodes wobble, in seconds.
	FidgetEpoch float64
}

// Name implements Model.
func (m *Conference) Name() string { return "conference" }

// Generate implements Model.
func (m *Conference) Generate(n int, duration float64, streams *sim.Streams) ([]*Trajectory, error) {
	if err := validateCommon(n, duration, streams); err != nil {
		return nil, err
	}
	if err := validateArea(m.Area); err != nil {
		return nil, err
	}
	if m.WandererFraction < 0 || m.WandererFraction > 1 {
		return nil, fmt.Errorf("%w: %g", errBadFraction, m.WandererFraction)
	}
	walkSpeed := m.WalkSpeed
	if walkSpeed <= 0 {
		walkSpeed = 1.2 // human walking pace
	}
	sitPause := m.SitPause
	if sitPause <= 0 {
		sitPause = 60
	}
	fidgetEpoch := m.FidgetEpoch
	if fidgetEpoch <= 0 {
		fidgetEpoch = 30
	}

	wanderers := int(math.Round(m.WandererFraction * float64(n)))
	wanderModel := &RandomWaypoint{
		Area:     m.Area,
		MinSpeed: walkSpeed * 0.5,
		MaxSpeed: walkSpeed,
		Pause:    sitPause,
	}

	out := make([]*Trajectory, n)
	for i := range out {
		rng := streams.NamedIndexed("conference", i)
		if i < wanderers {
			tr, err := wanderModel.generateOne(duration, rng)
			if err != nil {
				return nil, err
			}
			out[i] = tr
			continue
		}
		// Seated attendee: anchor point plus tiny wobble.
		anchor := uniformPoint(m.Area, rng)
		var b Builder
		b.Append(0, anchor)
		for now := fidgetEpoch; ; now += fidgetEpoch {
			p := anchor
			if m.FidgetRadius > 0 {
				a := rng.Float64() * 2 * math.Pi
				d := m.FidgetRadius * math.Sqrt(rng.Float64())
				p = m.Area.Clamp(anchor.Add(geom.FromPolar(d, a)))
			}
			b.Append(now, p)
			if now >= duration {
				break
			}
		}
		tr, err := b.Build()
		if err != nil {
			return nil, err
		}
		out[i] = tr
	}
	return out, nil
}
