package mobility

import (
	"testing"

	"mobic/internal/geom"
	"mobic/internal/sim"
)

func TestManhattan(t *testing.T) {
	area := geom.Square(500)
	m := &Manhattan{Area: area, Blocks: 5, MinSpeed: 5, MaxSpeed: 15, TurnProb: 0.25}
	checkModelBasics(t, m, area, 15)
	checkDeterminism(t, m)
}

func TestManhattanNodesStayOnStreets(t *testing.T) {
	area := geom.Square(500)
	m := &Manhattan{Area: area, Blocks: 5, MinSpeed: 5, MaxSpeed: 15, TurnProb: 0.25}
	trs, err := m.Generate(10, 300, sim.NewStreams(3))
	if err != nil {
		t.Fatal(err)
	}
	blockSize := 100.0
	onStreet := func(v float64) bool {
		// v must be within epsilon of a multiple of the block size OR the
		// other coordinate is (checked by caller); here: is v a street?
		r := v / blockSize
		return almostEqual(r, float64(int(r+0.5)), 1e-6)
	}
	for i, tr := range trs {
		for _, tm := range []float64{0, 37.7, 100, 251.3} {
			p := tr.At(tm)
			// On a street grid, at least one coordinate must lie exactly
			// on a street line (mid-segment the other coordinate varies).
			if !onStreet(p.X) && !onStreet(p.Y) {
				t.Errorf("node %d at t=%v is off-street: %v", i, tm, p)
			}
		}
	}
}

func TestManhattanValidation(t *testing.T) {
	area := geom.Square(500)
	if _, err := (&Manhattan{Area: area, Blocks: 0, MaxSpeed: 10}).Generate(5, 100, sim.NewStreams(1)); err == nil {
		t.Error("zero blocks should error")
	}
	if _, err := (&Manhattan{Area: area, Blocks: 5, MaxSpeed: 0}).Generate(5, 100, sim.NewStreams(1)); err == nil {
		t.Error("zero speed should error")
	}
	if _, err := (&Manhattan{Blocks: 5, MaxSpeed: 10}).Generate(5, 100, sim.NewStreams(1)); err == nil {
		t.Error("invalid area should error")
	}
}

func TestManhattanTurnProbClamped(t *testing.T) {
	area := geom.Square(400)
	m := &Manhattan{Area: area, Blocks: 4, MinSpeed: 5, MaxSpeed: 10, TurnProb: 0.9}
	if _, err := m.Generate(5, 100, sim.NewStreams(2)); err != nil {
		t.Fatalf("over-large turn prob should be clamped, not fail: %v", err)
	}
	m.TurnProb = -1
	if _, err := m.Generate(5, 100, sim.NewStreams(2)); err != nil {
		t.Fatalf("negative turn prob should be clamped, not fail: %v", err)
	}
}
