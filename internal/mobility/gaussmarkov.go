package mobility

import (
	"math"

	"mobic/internal/geom"
	"mobic/internal/sim"
)

// GaussMarkov is a temporally correlated entity model: speed and direction
// evolve as first-order autoregressive processes, so nodes turn smoothly
// instead of teleporting between headings. Used by robustness studies where
// the memoryless waypoint model would overstate mobility randomness.
//
//	s_k = alpha*s_{k-1} + (1-alpha)*meanSpeed + sqrt(1-alpha^2)*sigmaS*w
//	d_k = alpha*d_{k-1} + (1-alpha)*meanDir   + sqrt(1-alpha^2)*sigmaD*w
type GaussMarkov struct {
	// Area bounds all positions.
	Area geom.Rect
	// MeanSpeed is the long-run average speed in m/s.
	MeanSpeed float64
	// SigmaSpeed is the speed innovation deviation in m/s.
	SigmaSpeed float64
	// SigmaDir is the direction innovation deviation in radians.
	SigmaDir float64
	// Alpha in [0,1] is the memory parameter: 1 = straight-line cruise,
	// 0 = memoryless.
	Alpha float64
	// Step is the update epoch in seconds.
	Step float64
}

// Name implements Model.
func (m *GaussMarkov) Name() string { return "gaussmarkov" }

// Generate implements Model.
func (m *GaussMarkov) Generate(n int, duration float64, streams *sim.Streams) ([]*Trajectory, error) {
	if err := validateCommon(n, duration, streams); err != nil {
		return nil, err
	}
	if err := validateArea(m.Area); err != nil {
		return nil, err
	}
	if err := validateSpeed(0, math.Max(m.MeanSpeed, speedFloor)); err != nil {
		return nil, err
	}
	alpha := m.Alpha
	if alpha < 0 {
		alpha = 0
	}
	if alpha > 1 {
		alpha = 1
	}
	step := m.Step
	if step <= 0 {
		step = 5
	}
	innov := math.Sqrt(1 - alpha*alpha)

	out := make([]*Trajectory, n)
	for i := range out {
		rng := streams.NamedIndexed("gaussmarkov", i)
		var b Builder
		pos := uniformPoint(m.Area, rng)
		now := 0.0
		b.Append(now, pos)
		speed := m.MeanSpeed
		dir := rng.Float64() * 2 * math.Pi
		meanDir := dir
		for now < duration {
			speed = alpha*speed + (1-alpha)*m.MeanSpeed + innov*m.SigmaSpeed*rng.NormFloat64()
			if speed < 0 {
				speed = 0
			}
			dir = alpha*dir + (1-alpha)*meanDir + innov*m.SigmaDir*rng.NormFloat64()
			next, bounced := reflect(m.Area, pos, geom.FromPolar(speed*step, dir))
			if bounced {
				// Steer the mean heading back toward the area center so the
				// process does not fight the boundary forever.
				center := geom.Point{
					X: (m.Area.MinX + m.Area.MaxX) / 2,
					Y: (m.Area.MinY + m.Area.MaxY) / 2,
				}
				meanDir = center.Sub(next).Angle()
				dir = meanDir
			}
			now += step
			b.Append(now, next)
			pos = next
		}
		tr, err := b.Build()
		if err != nil {
			return nil, err
		}
		out[i] = tr
	}
	return out, nil
}
