package mobility

import (
	"strings"
	"testing"
)

// FuzzParseNS2 drives the setdest parser with arbitrary input: it must
// never panic, and on success every trajectory must answer position
// queries without NaNs at its own start.
func FuzzParseNS2(f *testing.F) {
	f.Add(sampleScenario)
	f.Add("$node_(0) set X_ 1\n$node_(0) set Y_ 2\n")
	f.Add(`$ns_ at 1.0 "$node_(0) setdest 1 2 3"`)
	f.Add("# comment only\n")
	f.Add("$node_(0) set X_ nan")
	f.Fuzz(func(t *testing.T, input string) {
		trs, err := ParseNS2(strings.NewReader(input))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		for _, tr := range trs {
			p := tr.At(tr.Start())
			if p != p { // NaN check
				t.Fatalf("NaN position from input %q", input)
			}
		}
	})
}
