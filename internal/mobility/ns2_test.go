package mobility

import (
	"strings"
	"testing"

	"mobic/internal/geom"
	"mobic/internal/sim"
)

const sampleScenario = `
# sample CMU scenario
$node_(0) set X_ 0.0
$node_(0) set Y_ 0.0
$node_(0) set Z_ 0.0
$node_(1) set X_ 100.0
$node_(1) set Y_ 50.0
$node_(1) set Z_ 0.0
$ns_ at 10.0 "$node_(0) setdest 30.0 40.0 5.0"
$ns_ at 5.0 "$node_(1) setdest 100.0 150.0 10.0"
`

func TestParseNS2Sample(t *testing.T) {
	trs, err := ParseNS2(strings.NewReader(sampleScenario))
	if err != nil {
		t.Fatal(err)
	}
	if len(trs) != 2 {
		t.Fatalf("got %d trajectories, want 2", len(trs))
	}
	// Node 0: stays at origin until t=10, then moves to (30,40) at 5 m/s
	// (distance 50 -> arrives t=20).
	if p := trs[0].At(0); p != (geom.Point{X: 0, Y: 0}) {
		t.Errorf("node 0 at t=0: %v", p)
	}
	if p := trs[0].At(10); p != (geom.Point{X: 0, Y: 0}) {
		t.Errorf("node 0 at t=10: %v", p)
	}
	if p := trs[0].At(15); !almostEqual(p.X, 15, 1e-9) || !almostEqual(p.Y, 20, 1e-9) {
		t.Errorf("node 0 mid-leg: %v, want (15, 20)", p)
	}
	if p := trs[0].At(25); p != (geom.Point{X: 30, Y: 40}) {
		t.Errorf("node 0 after arrival: %v", p)
	}
	// Node 1: moves straight up 100 m at 10 m/s starting t=5.
	if p := trs[1].At(10); !almostEqual(p.Y, 100, 1e-9) {
		t.Errorf("node 1 at t=10: %v, want y=100", p)
	}
}

func TestParseNS2MidFlightRedirect(t *testing.T) {
	scenario := `
$node_(0) set X_ 0.0
$node_(0) set Y_ 0.0
$ns_ at 0.0 "$node_(0) setdest 100.0 0.0 10.0"
$ns_ at 5.0 "$node_(0) setdest 50.0 100.0 10.0"
`
	trs, err := ParseNS2(strings.NewReader(scenario))
	if err != nil {
		t.Fatal(err)
	}
	// At t=5 the node is at (50, 0) and turns toward (50, 100): distance
	// 100, arriving t=15.
	if p := trs[0].At(5); !almostEqual(p.X, 50, 1e-9) || !almostEqual(p.Y, 0, 1e-9) {
		t.Errorf("turn point: %v, want (50, 0)", p)
	}
	if p := trs[0].At(15); !almostEqual(p.Y, 100, 1e-9) {
		t.Errorf("after redirect: %v, want y=100", p)
	}
}

func TestParseNS2Errors(t *testing.T) {
	cases := map[string]string{
		"empty":               "",
		"missing initial pos": `$ns_ at 1.0 "$node_(0) setdest 1 2 3"`,
		"garbage line":        "hello world",
		"bad node id":         "$node_(x) set X_ 1.0",
		"bad axis":            "$node_(0) set W_ 1.0",
		"bad set arity":       "$node_(0) set X_",
		"bad at time":         `$ns_ at abc "$node_(0) setdest 1 2 3"`,
		"bad setdest numbers": "$node_(0) set X_ 0\n$node_(0) set Y_ 0\n$ns_ at 1.0 \"$node_(0) setdest a b c\"",
		"nan coordinate":      "$node_(0) set X_ NaN\n$node_(0) set Y_ 0",
		"inf setdest":         "$node_(0) set X_ 0\n$node_(0) set Y_ 0\n$ns_ at 1.0 \"$node_(0) setdest Inf 2 3\"",
		"negative time":       "$node_(0) set X_ 0\n$node_(0) set Y_ 0\n$ns_ at -1.0 \"$node_(0) setdest 1 2 3\"",
	}
	for name, input := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ParseNS2(strings.NewReader(input)); err == nil {
				t.Errorf("input %q should error", input)
			}
		})
	}
}

func TestParseNS2IgnoresZeroSpeed(t *testing.T) {
	scenario := `
$node_(0) set X_ 10.0
$node_(0) set Y_ 10.0
$ns_ at 1.0 "$node_(0) setdest 99.0 99.0 0.0"
`
	trs, err := ParseNS2(strings.NewReader(scenario))
	if err != nil {
		t.Fatal(err)
	}
	if p := trs[0].At(100); p != (geom.Point{X: 10, Y: 10}) {
		t.Errorf("zero-speed setdest should be a no-op, node at %v", p)
	}
}

func TestNS2RoundTrip(t *testing.T) {
	area := geom.Square(670)
	model := &RandomWaypoint{Area: area, MaxSpeed: 20, Pause: 10}
	orig, err := model.Generate(10, 300, sim.NewStreams(7))
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := WriteNS2(&buf, orig); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseNS2(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(orig) {
		t.Fatalf("round trip lost nodes: %d vs %d", len(parsed), len(orig))
	}
	for i := range orig {
		for _, tm := range []float64{0, 17.3, 100, 250, 299} {
			a, b := orig[i].At(tm), parsed[i].At(tm)
			if a.Dist(b) > 1e-3 {
				t.Errorf("node %d at t=%v: original %v vs parsed %v", i, tm, a, b)
			}
		}
	}
}

func TestWriteNS2Format(t *testing.T) {
	tr := StaticTrajectory(geom.Point{X: 1.5, Y: 2.5})
	var buf strings.Builder
	if err := WriteNS2(&buf, []*Trajectory{tr}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "$node_(0) set X_ 1.500000") {
		t.Errorf("missing X line:\n%s", out)
	}
	if strings.Contains(out, "setdest") {
		t.Errorf("static trajectory should emit no setdest:\n%s", out)
	}
}

func TestFixedTrajectoriesModel(t *testing.T) {
	trs := []*Trajectory{
		StaticTrajectory(geom.Point{X: 1, Y: 1}),
		StaticTrajectory(geom.Point{X: 2, Y: 2}),
	}
	m := &FixedTrajectories{Trajectories: trs}
	got, err := m.Generate(2, 100, sim.NewStreams(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].At(0) != (geom.Point{X: 1, Y: 1}) {
		t.Errorf("fixed model returned wrong trajectories")
	}
	if _, err := m.Generate(5, 100, sim.NewStreams(1)); err == nil {
		t.Error("node count mismatch should error")
	}
	if m.Name() != "fixed" {
		t.Errorf("Name = %q", m.Name())
	}
}
