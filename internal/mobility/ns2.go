package mobility

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"mobic/internal/geom"
	"mobic/internal/sim"
)

// This file implements interop with the CMU wireless extensions' movement
// scenario format (the `setdest` output the paper's simulations consumed):
//
//	$node_(0) set X_ 83.36
//	$node_(0) set Y_ 239.44
//	$node_(0) set Z_ 0.00
//	$ns_ at 2.00 "$node_(0) setdest 300.10 150.50 10.00"
//
// WriteNS2 exports any trajectory set to this format; ParseNS2 rebuilds
// trajectories from it, so real setdest traces can drive this simulator and
// scenarios generated here can drive ns-2.

// WriteNS2 writes the trajectories as a CMU movement scenario. Pauses are
// implicit (no setdest is emitted while a node dwells).
func WriteNS2(w io.Writer, trs []*Trajectory) error {
	bw := bufio.NewWriter(w)
	for i, tr := range trs {
		p0 := tr.At(tr.Start())
		if _, err := fmt.Fprintf(bw, "$node_(%d) set X_ %.6f\n", i, p0.X); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(bw, "$node_(%d) set Y_ %.6f\n", i, p0.Y); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(bw, "$node_(%d) set Z_ 0.000000\n", i); err != nil {
			return err
		}
	}
	for i, tr := range trs {
		for k := 1; k < len(tr.times); k++ {
			t0, t1 := tr.times[k-1], tr.times[k]
			from, to := tr.points[k-1], tr.points[k]
			dist := from.Dist(to)
			if dist == 0 || t1 <= t0 {
				continue // pause leg: implicit
			}
			speed := dist / (t1 - t0)
			if _, err := fmt.Fprintf(bw, "$ns_ at %.6f \"$node_(%d) setdest %.6f %.6f %.6f\"\n",
				t0, i, to.X, to.Y, speed); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ns2Command is one parsed setdest directive.
type ns2Command struct {
	at    float64
	node  int
	x, y  float64
	speed float64
}

// ParseNS2 reads a CMU movement scenario and rebuilds one trajectory per
// node (node ids must be dense from 0). Mid-flight redirections — a setdest
// arriving before the previous leg completes — are handled the way ns-2
// does: the node turns from wherever it currently is.
func ParseNS2(r io.Reader) ([]*Trajectory, error) {
	initX := make(map[int]float64)
	initY := make(map[int]float64)
	var cmds []ns2Command
	maxNode := -1

	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch {
		case strings.HasPrefix(line, "$node_("):
			node, axis, val, err := parseSetLine(line)
			if err != nil {
				return nil, fmt.Errorf("mobility: ns2 line %d: %w", lineNo, err)
			}
			switch axis {
			case "X_":
				initX[node] = val
			case "Y_":
				initY[node] = val
			case "Z_":
				// ignored: 2-D simulator
			default:
				return nil, fmt.Errorf("mobility: ns2 line %d: unknown axis %q", lineNo, axis)
			}
			if node > maxNode {
				maxNode = node
			}
		case strings.HasPrefix(line, "$ns_ at "):
			cmd, err := parseAtLine(line)
			if err != nil {
				return nil, fmt.Errorf("mobility: ns2 line %d: %w", lineNo, err)
			}
			cmds = append(cmds, cmd)
			if cmd.node > maxNode {
				maxNode = cmd.node
			}
		default:
			return nil, fmt.Errorf("mobility: ns2 line %d: unrecognized %q", lineNo, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("mobility: reading ns2 scenario: %w", err)
	}
	if maxNode < 0 {
		return nil, fmt.Errorf("mobility: empty ns2 scenario")
	}

	sort.SliceStable(cmds, func(i, j int) bool { return cmds[i].at < cmds[j].at })

	out := make([]*Trajectory, maxNode+1)
	for node := 0; node <= maxNode; node++ {
		x, okX := initX[node]
		y, okY := initY[node]
		if !okX || !okY {
			return nil, fmt.Errorf("mobility: node %d missing initial position", node)
		}
		tr, err := buildFromCommands(node, geom.Point{X: x, Y: y}, cmds)
		if err != nil {
			return nil, err
		}
		out[node] = tr
	}
	return out, nil
}

// buildFromCommands replays a node's setdest commands into a trajectory.
func buildFromCommands(node int, start geom.Point, cmds []ns2Command) (*Trajectory, error) {
	var b Builder
	b.Append(0, start)
	pos := start
	// Pending leg state.
	var (
		legActive  bool
		legTarget  geom.Point
		legFrom    geom.Point
		legStart   float64
		legArrival float64
	)
	positionAt := func(t float64) geom.Point {
		if !legActive || t >= legArrival {
			if legActive {
				return legTarget
			}
			return pos
		}
		frac := (t - legStart) / (legArrival - legStart)
		return geom.Lerp(legFrom, legTarget, frac)
	}
	for _, c := range cmds {
		if c.node != node {
			continue
		}
		if c.speed <= 0 {
			continue // ns-2 treats non-positive speeds as no-ops
		}
		if legActive && c.at >= legArrival {
			// Previous leg completed before this command.
			b.Append(legArrival, legTarget)
			pos = legTarget
			legActive = false
		}
		here := positionAt(c.at)
		b.Append(c.at, here)
		pos = here
		legFrom = here
		legTarget = geom.Point{X: c.x, Y: c.y}
		legStart = c.at
		dist := here.Dist(legTarget)
		legArrival = c.at + dist/c.speed
		legActive = dist > 0
	}
	if legActive {
		b.Append(legArrival, legTarget)
	}
	return b.Build()
}

func parseSetLine(line string) (node int, axis string, val float64, err error) {
	// $node_(12) set X_ 83.36
	rest, ok := strings.CutPrefix(line, "$node_(")
	if !ok {
		return 0, "", 0, fmt.Errorf("bad node line %q", line)
	}
	idx := strings.Index(rest, ")")
	if idx < 0 {
		return 0, "", 0, fmt.Errorf("bad node line %q", line)
	}
	node, err = strconv.Atoi(rest[:idx])
	if err != nil {
		return 0, "", 0, fmt.Errorf("bad node id in %q: %w", line, err)
	}
	fields := strings.Fields(rest[idx+1:])
	if len(fields) != 3 || fields[0] != "set" {
		return 0, "", 0, fmt.Errorf("bad set line %q", line)
	}
	val, err = strconv.ParseFloat(fields[2], 64)
	if err != nil {
		return 0, "", 0, fmt.Errorf("bad coordinate in %q: %w", line, err)
	}
	if math.IsNaN(val) || math.IsInf(val, 0) {
		return 0, "", 0, fmt.Errorf("non-finite coordinate in %q", line)
	}
	return node, fields[1], val, nil
}

func parseAtLine(line string) (ns2Command, error) {
	// $ns_ at 2.00 "$node_(0) setdest 300.10 150.50 10.00"
	rest, ok := strings.CutPrefix(line, "$ns_ at ")
	if !ok {
		return ns2Command{}, fmt.Errorf("bad at line %q", line)
	}
	sp := strings.IndexByte(rest, ' ')
	if sp < 0 {
		return ns2Command{}, fmt.Errorf("bad at line %q", line)
	}
	at, err := strconv.ParseFloat(rest[:sp], 64)
	if err != nil {
		return ns2Command{}, fmt.Errorf("bad time in %q: %w", line, err)
	}
	quoted := strings.TrimSpace(rest[sp+1:])
	quoted = strings.Trim(quoted, `"`)
	inner, ok := strings.CutPrefix(quoted, "$node_(")
	if !ok {
		return ns2Command{}, fmt.Errorf("bad setdest body %q", line)
	}
	idx := strings.Index(inner, ")")
	if idx < 0 {
		return ns2Command{}, fmt.Errorf("bad setdest body %q", line)
	}
	node, err := strconv.Atoi(inner[:idx])
	if err != nil {
		return ns2Command{}, fmt.Errorf("bad node id in %q: %w", line, err)
	}
	fields := strings.Fields(inner[idx+1:])
	if len(fields) != 4 || fields[0] != "setdest" {
		return ns2Command{}, fmt.Errorf("bad setdest body %q", line)
	}
	x, err1 := strconv.ParseFloat(fields[1], 64)
	y, err2 := strconv.ParseFloat(fields[2], 64)
	speed, err3 := strconv.ParseFloat(fields[3], 64)
	if err1 != nil || err2 != nil || err3 != nil {
		return ns2Command{}, fmt.Errorf("bad setdest numbers in %q", line)
	}
	for _, v := range []float64{at, x, y, speed} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return ns2Command{}, fmt.Errorf("non-finite setdest values in %q", line)
		}
	}
	return ns2Command{at: at, node: node, x: x, y: y, speed: speed}, nil
}

// FixedTrajectories wraps pre-built trajectories (e.g. parsed from an ns-2
// scenario file) as a mobility.Model so they can drive a simulation.
type FixedTrajectories struct {
	// Trajectories holds one trajectory per node.
	Trajectories []*Trajectory
}

// Name implements Model.
func (m *FixedTrajectories) Name() string { return "fixed" }

// Generate implements Model: it validates the requested node count against
// the stored trajectories. The duration and streams are unused — the file
// already fixes the movement.
func (m *FixedTrajectories) Generate(n int, _ float64, _ *sim.Streams) ([]*Trajectory, error) {
	if n != len(m.Trajectories) {
		return nil, fmt.Errorf("mobility: fixed trajectories hold %d nodes, scenario wants %d",
			len(m.Trajectories), n)
	}
	return m.Trajectories, nil
}
