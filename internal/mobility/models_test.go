package mobility

import (
	"math"
	"testing"

	"mobic/internal/geom"
	"mobic/internal/sim"
)

const testDuration = 900.0

func checkModelBasics(t *testing.T, m Model, area geom.Rect, maxSpeed float64) []*Trajectory {
	t.Helper()
	streams := sim.NewStreams(42)
	const n = 30
	trs, err := m.Generate(n, testDuration, streams)
	if err != nil {
		t.Fatalf("%s: %v", m.Name(), err)
	}
	if len(trs) != n {
		t.Fatalf("%s: got %d trajectories, want %d", m.Name(), len(trs), n)
	}
	for i, tr := range trs {
		// A single-waypoint (static) trajectory extends forever; moving
		// trajectories must cover the whole simulation.
		if tr.Waypoints() > 1 && tr.End() < testDuration {
			t.Errorf("%s node %d: trajectory ends at %v, before duration %v", m.Name(), i, tr.End(), testDuration)
		}
		// Sample positions stay in the area (with a small tolerance for
		// models like highway wrap that use their own bounds).
		for _, tm := range []float64{0, 1, 100, 450, 899, 900} {
			p := tr.At(tm)
			if !area.Contains(p) {
				t.Errorf("%s node %d at t=%v: %v outside %v", m.Name(), i, tm, p, area)
			}
		}
		if maxSpeed > 0 {
			if got := tr.MaxSpeed(); got > maxSpeed*1.0001 {
				t.Errorf("%s node %d: max speed %v exceeds cap %v", m.Name(), i, got, maxSpeed)
			}
		}
	}
	return trs
}

func checkDeterminism(t *testing.T, m Model) {
	t.Helper()
	a, err := m.Generate(10, 100, sim.NewStreams(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Generate(10, 100, sim.NewStreams(7))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		for _, tm := range []float64{0, 33.3, 99} {
			if a[i].At(tm) != b[i].At(tm) {
				t.Fatalf("%s: node %d diverges at t=%v with same seed", m.Name(), i, tm)
			}
		}
	}
	c, err := m.Generate(10, 100, sim.NewStreams(8))
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i].At(50) != c[i].At(50) {
			same = false
			break
		}
	}
	if same {
		t.Errorf("%s: different seeds produced identical trajectories", m.Name())
	}
}

func TestStaticModel(t *testing.T) {
	area := geom.Square(670)
	m := &Static{Area: area}
	trs := checkModelBasics(t, m, area, 0)
	for i, tr := range trs {
		if tr.At(0) != tr.At(900) {
			t.Errorf("static node %d moved", i)
		}
	}
	checkDeterminism(t, m)
}

func TestStaticValidation(t *testing.T) {
	m := &Static{Area: geom.Square(100)}
	if _, err := m.Generate(0, 100, sim.NewStreams(1)); err == nil {
		t.Error("zero nodes should error")
	}
	if _, err := m.Generate(5, 0, sim.NewStreams(1)); err == nil {
		t.Error("zero duration should error")
	}
	if _, err := m.Generate(5, 100, nil); err == nil {
		t.Error("nil streams should error")
	}
	bad := &Static{}
	if _, err := bad.Generate(5, 100, sim.NewStreams(1)); err == nil {
		t.Error("invalid area should error")
	}
}

func TestRandomWaypoint(t *testing.T) {
	area := geom.Square(670)
	m := &RandomWaypoint{Area: area, MaxSpeed: 20}
	trs := checkModelBasics(t, m, area, 20)
	// Nodes must actually move.
	moved := 0
	for _, tr := range trs {
		if tr.At(0).Dist(tr.At(450)) > 1 {
			moved++
		}
	}
	if moved < 25 {
		t.Errorf("only %d/30 waypoint nodes moved", moved)
	}
	checkDeterminism(t, m)
}

func TestRandomWaypointPause(t *testing.T) {
	area := geom.Square(670)
	m := &RandomWaypoint{Area: area, MaxSpeed: 20, Pause: 30}
	streams := sim.NewStreams(3)
	trs, err := m.Generate(5, 900, streams)
	if err != nil {
		t.Fatal(err)
	}
	// With PT=30 there must exist intervals where the node is stationary:
	// find one by sampling velocities.
	foundPause := false
	for _, tr := range trs {
		for tm := 1.0; tm < 900; tm += 1 {
			if tr.VelocityAt(tm).Len() == 0 {
				foundPause = true
				break
			}
		}
	}
	if !foundPause {
		t.Error("PT=30 should produce stationary intervals")
	}
}

func TestRandomWaypointValidation(t *testing.T) {
	area := geom.Square(100)
	if _, err := (&RandomWaypoint{Area: area, MaxSpeed: 0}).Generate(5, 100, sim.NewStreams(1)); err == nil {
		t.Error("zero max speed should error")
	}
	if _, err := (&RandomWaypoint{Area: area, MinSpeed: 10, MaxSpeed: 5}).Generate(5, 100, sim.NewStreams(1)); err == nil {
		t.Error("min > max should error")
	}
	if _, err := (&RandomWaypoint{MaxSpeed: 5}).Generate(5, 100, sim.NewStreams(1)); err == nil {
		t.Error("invalid area should error")
	}
}

func TestRandomWalk(t *testing.T) {
	area := geom.Square(670)
	m := &RandomWalk{Area: area, MaxSpeed: 10, Step: 5}
	checkModelBasics(t, m, area, 10)
	checkDeterminism(t, m)
}

func TestRandomWalkDefaultStep(t *testing.T) {
	area := geom.Square(300)
	m := &RandomWalk{Area: area, MaxSpeed: 5} // Step unset -> default
	if _, err := m.Generate(3, 50, sim.NewStreams(2)); err != nil {
		t.Fatal(err)
	}
}

func TestGaussMarkov(t *testing.T) {
	area := geom.Square(670)
	m := &GaussMarkov{
		Area:       area,
		MeanSpeed:  10,
		SigmaSpeed: 2,
		SigmaDir:   0.3,
		Alpha:      0.8,
		Step:       5,
	}
	// Speed can exceed mean via innovations; no hard cap check.
	checkModelBasics(t, m, area, 0)
	checkDeterminism(t, m)
}

func TestGaussMarkovSmoothness(t *testing.T) {
	// High alpha should yield long runs in similar directions: the net
	// displacement over 10 epochs should often exceed what a memoryless
	// walk achieves. Just verify trajectories are produced and bounded;
	// the heading-persistence check compares turn angles.
	area := geom.Square(2000)
	m := &GaussMarkov{Area: area, MeanSpeed: 10, SigmaSpeed: 0.5, SigmaDir: 0.05, Alpha: 0.95, Step: 2}
	trs, err := m.Generate(5, 200, sim.NewStreams(11))
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range trs {
		net := tr.At(0).Dist(tr.At(200))
		if net < 100 {
			// With near-straight cruising at ~10 m/s for 200 s, nodes
			// should cover substantial ground unless they bounced.
			t.Logf("low net displacement %v (acceptable if boundary-reflected)", net)
		}
	}
}

func TestRPGMGroupCoherence(t *testing.T) {
	area := geom.Square(1000)
	m := &RPGM{
		Area:        area,
		Groups:      3,
		GroupRadius: 50,
		MaxSpeed:    15,
		LocalJitter: 5,
		Epoch:       5,
	}
	streams := sim.NewStreams(5)
	const n = 30
	trs, err := m.Generate(n, 300, streams)
	if err != nil {
		t.Fatal(err)
	}
	// Members of the same group (round-robin i%3) stay within
	// 2*(radius+jitter) of each other; different groups usually don't.
	for _, tm := range []float64{50, 150, 250} {
		for i := 0; i < n; i += 3 {
			for j := i + 3; j < n; j += 3 {
				d := trs[i].At(tm).Dist(trs[j].At(tm))
				if d > 2*(50+5)+1 {
					t.Errorf("group 0 members %d,%d separated by %v at t=%v", i, j, d, tm)
				}
			}
		}
	}
	checkDeterminism(t, m)
}

func TestRPGMValidation(t *testing.T) {
	area := geom.Square(100)
	if _, err := (&RPGM{Area: area, Groups: 0, GroupRadius: 10, MaxSpeed: 5}).Generate(5, 100, sim.NewStreams(1)); err == nil {
		t.Error("zero groups should error")
	}
	if _, err := (&RPGM{Area: area, Groups: 2, GroupRadius: 0, MaxSpeed: 5}).Generate(5, 100, sim.NewStreams(1)); err == nil {
		t.Error("zero radius should error")
	}
}

func TestHighway(t *testing.T) {
	m := &Highway{
		Length:      2000,
		Lanes:       4,
		LaneWidth:   5,
		MinSpeed:    20,
		MaxSpeed:    33,
		SpeedJitter: 0.1,
	}
	area := m.Area()
	streams := sim.NewStreams(9)
	trs, err := m.Generate(20, 300, streams)
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range trs {
		// Y stays on the lane.
		laneY := (float64(i%4) + 0.5) * 5
		for _, tm := range []float64{0, 100, 299} {
			p := tr.At(tm)
			if !almostEqual(p.Y, laneY, 1e-9) {
				t.Errorf("node %d left its lane: %v", i, p)
			}
			if p.X < 0 || p.X > 2000 {
				t.Errorf("node %d X=%v outside segment", i, p.X)
			}
		}
	}
	if !area.Contains(geom.Point{X: 1000, Y: 10}) {
		t.Errorf("Area() = %v looks wrong", area)
	}
	checkDeterminism(t, m)
}

func TestHighwayBidirectional(t *testing.T) {
	m := &Highway{Length: 5000, Lanes: 2, MinSpeed: 25, MaxSpeed: 25, Bidirectional: true}
	trs, err := m.Generate(2, 20, sim.NewStreams(3))
	if err != nil {
		t.Fatal(err)
	}
	// Node 0 (lane 0) moves +X; node 1 (lane 1) moves -X. Compare early
	// displacement away from wrap boundaries.
	d0 := trs[0].At(10).X - trs[0].At(8).X
	d1 := trs[1].At(10).X - trs[1].At(8).X
	// Allow for wrap: displacement magnitude is 2s * 25 m/s = 50 m or wraps.
	if math.Abs(d0) < 4999 && d0 < 0 {
		t.Errorf("lane 0 should move +X, moved %v", d0)
	}
	if math.Abs(d1) < 4999 && d1 > 0 {
		t.Errorf("lane 1 should move -X, moved %v", d1)
	}
}

func TestHighwayValidation(t *testing.T) {
	if _, err := (&Highway{Length: 0, Lanes: 1, MaxSpeed: 10}).Generate(3, 10, sim.NewStreams(1)); err == nil {
		t.Error("zero length should error")
	}
	if _, err := (&Highway{Length: 100, Lanes: 0, MaxSpeed: 10}).Generate(3, 10, sim.NewStreams(1)); err == nil {
		t.Error("zero lanes should error")
	}
}

func TestConference(t *testing.T) {
	area := geom.Square(60)
	m := &Conference{
		Area:             area,
		WandererFraction: 0.2,
		WalkSpeed:        1.2,
		SitPause:         30,
		FidgetRadius:     0.5,
		FidgetEpoch:      10,
	}
	streams := sim.NewStreams(13)
	const n = 20
	trs, err := m.Generate(n, 300, streams)
	if err != nil {
		t.Fatal(err)
	}
	// Seated nodes (the last 80%) barely move.
	for i := 4; i < n; i++ {
		net := trs[i].At(0).Dist(trs[i].At(300))
		if net > 1.01 { // 2*FidgetRadius max
			t.Errorf("seated node %d moved %v m", i, net)
		}
	}
	checkDeterminism(t, m)
}

func TestConferenceValidation(t *testing.T) {
	if _, err := (&Conference{Area: geom.Square(50), WandererFraction: 1.5}).Generate(5, 100, sim.NewStreams(1)); err == nil {
		t.Error("fraction > 1 should error")
	}
}

func TestRandomWaypointSteadyState(t *testing.T) {
	area := geom.Square(670)
	m := &RandomWaypoint{Area: area, MaxSpeed: 20, SteadyState: true}
	trs, err := m.Generate(30, 900, sim.NewStreams(7))
	if err != nil {
		t.Fatal(err)
	}
	// Every trajectory still covers the run and stays in bounds.
	movingAtStart := 0
	for i, tr := range trs {
		if tr.End() < 900 {
			t.Errorf("node %d: trajectory ends at %v", i, tr.End())
		}
		for _, tm := range []float64{0, 450, 900} {
			if !area.Contains(tr.At(tm)) {
				t.Errorf("node %d at t=%v outside area", i, tm)
			}
		}
		if tr.VelocityAt(0.5).Len() > 0 {
			movingAtStart++
		}
	}
	// Under the stationary distribution (PT=0) nearly every node is
	// mid-flight at t=0; under uniform initialization none would need to
	// be. Require a clear majority.
	if movingAtStart < 25 {
		t.Errorf("only %d/30 nodes in flight at t=0; steady-state pre-roll ineffective", movingAtStart)
	}
	checkDeterminism(t, m)
}

// Spot-check the random-waypoint speed distribution respects bounds.
func TestWaypointSpeedBounds(t *testing.T) {
	area := geom.Square(670)
	m := &RandomWaypoint{Area: area, MinSpeed: 5, MaxSpeed: 20}
	trs, err := m.Generate(20, 900, sim.NewStreams(21))
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range trs {
		if tr.MaxSpeed() > 20.0001 {
			t.Errorf("node %d exceeds MaxSpeed: %v", i, tr.MaxSpeed())
		}
	}
}
