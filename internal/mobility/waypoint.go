package mobility

import (
	"math/rand/v2"

	"mobic/internal/geom"
	"mobic/internal/sim"
)

// speedFloor prevents the random-waypoint pathology where a near-zero speed
// draw makes a node crawl for hours: speeds below this are redrawn as this
// floor. The paper's slowest scenario uses MaxSpeed = 1 m/s, so 0.01 m/s is
// far below any configured regime.
const speedFloor = 0.01

// RandomWaypoint is the classic CMU `setdest` model used by the paper
// (Section 4.1): each node starts at a uniform random position, repeatedly
// picks a uniform random destination and a uniform random speed in
// (MinSpeed, MaxSpeed], travels there in a straight line, pauses for Pause
// seconds, and repeats.
type RandomWaypoint struct {
	// Area bounds all positions.
	Area geom.Rect
	// MinSpeed and MaxSpeed bound the uniform speed draw in m/s. MinSpeed
	// of 0 reproduces original setdest (with a tiny floor; see speedFloor).
	MinSpeed, MaxSpeed float64
	// Pause is the dwell time at each destination in seconds (Table 1 "PT").
	Pause float64
	// SteadyState, when set, pre-rolls each node's walk before t=0 so the
	// observed process starts from (approximately) the random waypoint
	// model's stationary distribution instead of the uniform initial one.
	// This avoids the well-known RWP average-speed decay artifact in
	// which early-simulation measurements are biased (Yoon et al.).
	SteadyState bool
}

// steadyStatePreRoll is how long the walk runs before t=0 under
// SteadyState. A few epochs of cross-area travel suffice to mix.
const steadyStatePreRoll = 500.0

// Name implements Model.
func (m *RandomWaypoint) Name() string { return "waypoint" }

// Generate implements Model.
func (m *RandomWaypoint) Generate(n int, duration float64, streams *sim.Streams) ([]*Trajectory, error) {
	if err := validateCommon(n, duration, streams); err != nil {
		return nil, err
	}
	if err := validateArea(m.Area); err != nil {
		return nil, err
	}
	if err := validateSpeed(m.MinSpeed, m.MaxSpeed); err != nil {
		return nil, err
	}
	out := make([]*Trajectory, n)
	for i := range out {
		tr, err := m.generateOne(duration, streams.NamedIndexed("waypoint", i))
		if err != nil {
			return nil, err
		}
		out[i] = tr
	}
	return out, nil
}

func (m *RandomWaypoint) generateOne(duration float64, rng *rand.Rand) (*Trajectory, error) {
	preRoll := 0.0
	if m.SteadyState {
		preRoll = steadyStatePreRoll
	}
	var b Builder
	now := 0.0
	pos := uniformPoint(m.Area, rng)
	b.Append(now, pos)
	for now < duration+preRoll {
		dest := uniformPoint(m.Area, rng)
		speed := m.drawSpeed(rng)
		travel := pos.Dist(dest) / speed
		now += travel
		b.Append(now, dest)
		pos = dest
		if m.Pause > 0 {
			now += m.Pause
			b.Append(now, pos)
		}
	}
	tr, err := b.Build()
	if err != nil || preRoll == 0 {
		return tr, err
	}
	return shiftTrajectory(tr, preRoll)
}

// shiftTrajectory advances tr by dt: queries at time t observe what tr did
// at t+dt, so the pre-roll segment before dt is discarded and the walk is
// already "in flight" at t=0.
func shiftTrajectory(tr *Trajectory, dt float64) (*Trajectory, error) {
	var b Builder
	b.Append(0, tr.At(dt))
	for i := 0; i < tr.Waypoints(); i++ {
		if tr.times[i] > dt {
			b.Append(tr.times[i]-dt, tr.points[i])
		}
	}
	return b.Build()
}

func (m *RandomWaypoint) drawSpeed(rng *rand.Rand) float64 {
	speed := m.MinSpeed + rng.Float64()*(m.MaxSpeed-m.MinSpeed)
	if speed < speedFloor {
		speed = speedFloor
	}
	return speed
}

// RandomWalk is a memoryless entity model: every Step seconds the node draws
// a fresh uniform direction and speed and walks; legs that would exit the
// area are reflected off the boundary.
type RandomWalk struct {
	// Area bounds all positions.
	Area geom.Rect
	// MinSpeed and MaxSpeed bound the uniform speed draw in m/s.
	MinSpeed, MaxSpeed float64
	// Step is the epoch length in seconds between direction changes.
	Step float64
}

// Name implements Model.
func (m *RandomWalk) Name() string { return "walk" }

// Generate implements Model.
func (m *RandomWalk) Generate(n int, duration float64, streams *sim.Streams) ([]*Trajectory, error) {
	if err := validateCommon(n, duration, streams); err != nil {
		return nil, err
	}
	if err := validateArea(m.Area); err != nil {
		return nil, err
	}
	if err := validateSpeed(m.MinSpeed, m.MaxSpeed); err != nil {
		return nil, err
	}
	step := m.Step
	if step <= 0 {
		step = 10
	}
	out := make([]*Trajectory, n)
	for i := range out {
		rng := streams.NamedIndexed("walk", i)
		var b Builder
		pos := uniformPoint(m.Area, rng)
		now := 0.0
		b.Append(now, pos)
		for now < duration {
			speed := m.MinSpeed + rng.Float64()*(m.MaxSpeed-m.MinSpeed)
			if speed < speedFloor {
				speed = speedFloor
			}
			dir := rng.Float64() * 2 * 3.141592653589793
			delta := geom.FromPolar(speed*step, dir)
			next, bounced := reflect(m.Area, pos, delta)
			// A reflected leg is split at most a handful of times; for
			// waypoint bookkeeping we record only the endpoint, because
			// the deflection error within one short epoch is negligible
			// for clustering studies and keeps trajectories compact.
			_ = bounced
			now += step
			b.Append(now, next)
			pos = next
		}
		tr, err := b.Build()
		if err != nil {
			return nil, err
		}
		out[i] = tr
	}
	return out, nil
}

// reflect walks from pos by delta, reflecting off the rectangle's edges.
// It returns the final position and whether any reflection occurred.
func reflect(area geom.Rect, pos geom.Point, delta geom.Vec) (geom.Point, bool) {
	x := pos.X + delta.X
	y := pos.Y + delta.Y
	bounced := false
	for i := 0; i < 8; i++ { // a leg can bounce several times in a corner
		fixed := true
		if x < area.MinX {
			x = 2*area.MinX - x
			bounced, fixed = true, false
		}
		if x > area.MaxX {
			x = 2*area.MaxX - x
			bounced, fixed = true, false
		}
		if y < area.MinY {
			y = 2*area.MinY - y
			bounced, fixed = true, false
		}
		if y > area.MaxY {
			y = 2*area.MaxY - y
			bounced, fixed = true, false
		}
		if fixed {
			break
		}
	}
	return area.Clamp(geom.Point{X: x, Y: y}), bounced
}
