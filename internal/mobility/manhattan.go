package mobility

import (
	"fmt"

	"mobic/internal/geom"
	"mobic/internal/sim"
)

// Manhattan is the classic urban MANET model: nodes move along the streets
// of a regular grid. At every intersection a node continues straight with
// probability 1-2*TurnProb, or turns left/right with probability TurnProb
// each. Speeds are drawn uniformly per street segment.
//
// The model complements the paper's Section 5 scenario list: relative
// mobility between nodes sharing a street is low while cross-street nodes
// diverge quickly — a middle ground between highway and random waypoint.
type Manhattan struct {
	// Area is the covered region; streets divide it into Blocks x Blocks
	// cells.
	Area geom.Rect
	// Blocks is the number of city blocks per axis (streets = Blocks+1).
	Blocks int
	// MinSpeed and MaxSpeed bound the per-segment speed draw in m/s.
	MinSpeed, MaxSpeed float64
	// TurnProb is the probability of turning each way at an intersection
	// (clamped to keep 1-2*TurnProb >= 0).
	TurnProb float64
}

// Name implements Model.
func (m *Manhattan) Name() string { return "manhattan" }

// Generate implements Model.
func (m *Manhattan) Generate(n int, duration float64, streams *sim.Streams) ([]*Trajectory, error) {
	if err := validateCommon(n, duration, streams); err != nil {
		return nil, err
	}
	if err := validateArea(m.Area); err != nil {
		return nil, err
	}
	if err := validateSpeed(m.MinSpeed, m.MaxSpeed); err != nil {
		return nil, err
	}
	if m.Blocks <= 0 {
		return nil, fmt.Errorf("mobility: manhattan needs at least one block, got %d", m.Blocks)
	}
	turnProb := m.TurnProb
	if turnProb < 0 {
		turnProb = 0
	}
	if turnProb > 0.5 {
		turnProb = 0.5
	}

	blockW := m.Area.Width() / float64(m.Blocks)
	blockH := m.Area.Height() / float64(m.Blocks)
	streetX := func(i int) float64 { return m.Area.MinX + float64(i)*blockW }
	streetY := func(j int) float64 { return m.Area.MinY + float64(j)*blockH }

	// Direction encoding: 0 = +x, 1 = +y, 2 = -x, 3 = -y.
	dx := []int{1, 0, -1, 0}
	dy := []int{0, 1, 0, -1}

	out := make([]*Trajectory, n)
	for i := range out {
		rng := streams.NamedIndexed("manhattan", i)
		// Start at a random intersection with a random heading.
		ix := rng.IntN(m.Blocks + 1)
		iy := rng.IntN(m.Blocks + 1)
		dir := rng.IntN(4)

		var b Builder
		now := 0.0
		b.Append(now, geom.Point{X: streetX(ix), Y: streetY(iy)})
		for now < duration {
			// Turn or go straight; reverse only when forced at the wall.
			r := rng.Float64()
			switch {
			case r < turnProb:
				dir = (dir + 1) % 4
			case r < 2*turnProb:
				dir = (dir + 3) % 4
			}
			// Bounce off the boundary.
			for tries := 0; tries < 4; tries++ {
				nx, ny := ix+dx[dir], iy+dy[dir]
				if nx >= 0 && nx <= m.Blocks && ny >= 0 && ny <= m.Blocks {
					break
				}
				dir = (dir + 1) % 4
			}
			ix += dx[dir]
			iy += dy[dir]
			speed := m.MinSpeed + rng.Float64()*(m.MaxSpeed-m.MinSpeed)
			if speed < speedFloor {
				speed = speedFloor
			}
			segLen := blockW
			if dy[dir] != 0 {
				segLen = blockH
			}
			now += segLen / speed
			b.Append(now, geom.Point{X: streetX(ix), Y: streetY(iy)})
		}
		tr, err := b.Build()
		if err != nil {
			return nil, err
		}
		out[i] = tr
	}
	return out, nil
}
