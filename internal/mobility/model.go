package mobility

import (
	"errors"
	"fmt"

	"mobic/internal/geom"
	"mobic/internal/sim"
)

// Model generates one trajectory per node covering [0, duration].
type Model interface {
	// Name identifies the model in configs and experiment output.
	Name() string
	// Generate returns n trajectories spanning at least [0, duration].
	// Implementations must draw all randomness from streams so scenarios
	// are reproducible from the seed alone.
	Generate(n int, duration float64, streams *sim.Streams) ([]*Trajectory, error)
}

// Common validation errors shared by the models.
var (
	errNoNodes     = errors.New("mobility: node count must be positive")
	errNoDuration  = errors.New("mobility: duration must be positive")
	errBadArea     = errors.New("mobility: area must have positive extent")
	errBadSpeed    = errors.New("mobility: speed bounds must satisfy 0 <= min <= max, max > 0")
	errNilStreams  = errors.New("mobility: nil random streams")
	errBadFraction = errors.New("mobility: fraction must be in [0, 1]")
)

func validateCommon(n int, duration float64, streams *sim.Streams) error {
	if n <= 0 {
		return fmt.Errorf("%w: %d", errNoNodes, n)
	}
	if duration <= 0 {
		return fmt.Errorf("%w: %g", errNoDuration, duration)
	}
	if streams == nil {
		return errNilStreams
	}
	return nil
}

func validateArea(area geom.Rect) error {
	if !area.Valid() {
		return fmt.Errorf("%w: %v", errBadArea, area)
	}
	return nil
}

func validateSpeed(minSpeed, maxSpeed float64) error {
	if minSpeed < 0 || maxSpeed <= 0 || minSpeed > maxSpeed {
		return fmt.Errorf("%w: [%g, %g]", errBadSpeed, minSpeed, maxSpeed)
	}
	return nil
}

// uniformPoint draws a uniformly distributed point in area.
func uniformPoint(area geom.Rect, rng interface{ Float64() float64 }) geom.Point {
	return geom.Point{
		X: area.MinX + rng.Float64()*area.Width(),
		Y: area.MinY + rng.Float64()*area.Height(),
	}
}

// Static places nodes uniformly at random and never moves them.
type Static struct {
	// Area is the placement region.
	Area geom.Rect
}

// Name implements Model.
func (s *Static) Name() string { return "static" }

// Generate implements Model.
func (s *Static) Generate(n int, duration float64, streams *sim.Streams) ([]*Trajectory, error) {
	if err := validateCommon(n, duration, streams); err != nil {
		return nil, err
	}
	if err := validateArea(s.Area); err != nil {
		return nil, err
	}
	rng := streams.Named("static-placement")
	out := make([]*Trajectory, n)
	for i := range out {
		out[i] = StaticTrajectory(uniformPoint(s.Area, rng))
	}
	return out, nil
}
