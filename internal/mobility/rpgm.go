package mobility

import (
	"fmt"
	"math"

	"mobic/internal/geom"
	"mobic/internal/sim"
)

// RPGM is the Reference Point Group Mobility model the paper discusses in
// Section 2.2: each group has a logical center whose motion (a random
// waypoint walk here) defines the group's motion; members ride a reference
// point offset from the center plus a small local random displacement.
//
// The disaster-relief example uses RPGM: rescue squads move as coherent
// groups, which is exactly the regime where a relative-mobility metric
// should shine (low intra-group relative motion, high inter-group motion).
type RPGM struct {
	// Area bounds the group centers.
	Area geom.Rect
	// Groups is the number of groups; nodes are dealt round-robin.
	Groups int
	// GroupRadius is the maximum reference-point offset from the center.
	GroupRadius float64
	// MinSpeed and MaxSpeed bound the group centers' waypoint speeds.
	MinSpeed, MaxSpeed float64
	// Pause is the group centers' waypoint pause time.
	Pause float64
	// LocalJitter is the radius of each member's random displacement
	// around its reference point, redrawn at every center waypoint epoch.
	LocalJitter float64
	// Epoch is the member re-jitter interval in seconds.
	Epoch float64
}

// Name implements Model.
func (m *RPGM) Name() string { return "rpgm" }

// Generate implements Model.
func (m *RPGM) Generate(n int, duration float64, streams *sim.Streams) ([]*Trajectory, error) {
	if err := validateCommon(n, duration, streams); err != nil {
		return nil, err
	}
	if err := validateArea(m.Area); err != nil {
		return nil, err
	}
	if err := validateSpeed(m.MinSpeed, m.MaxSpeed); err != nil {
		return nil, err
	}
	if m.Groups <= 0 {
		return nil, fmt.Errorf("mobility: RPGM needs at least one group, got %d", m.Groups)
	}
	if m.GroupRadius <= 0 {
		return nil, fmt.Errorf("mobility: RPGM group radius must be positive, got %g", m.GroupRadius)
	}
	epoch := m.Epoch
	if epoch <= 0 {
		epoch = 5
	}

	// Group centers follow a random waypoint walk shrunk by the group
	// radius so members stay mostly inside the area.
	inner := geom.Rect{
		MinX: m.Area.MinX + m.GroupRadius,
		MinY: m.Area.MinY + m.GroupRadius,
		MaxX: m.Area.MaxX - m.GroupRadius,
		MaxY: m.Area.MaxY - m.GroupRadius,
	}
	if !inner.Valid() {
		inner = m.Area
	}
	centerModel := &RandomWaypoint{
		Area:     inner,
		MinSpeed: m.MinSpeed,
		MaxSpeed: m.MaxSpeed,
		Pause:    m.Pause,
	}
	centers := make([]*Trajectory, m.Groups)
	for g := range centers {
		tr, err := centerModel.generateOne(duration, streams.NamedIndexed("rpgm-center", g))
		if err != nil {
			return nil, err
		}
		centers[g] = tr
	}

	out := make([]*Trajectory, n)
	for i := range out {
		group := i % m.Groups
		rng := streams.NamedIndexed("rpgm-member", i)
		// Fixed reference offset within the group disc.
		refAngle := rng.Float64() * 2 * math.Pi
		refDist := m.GroupRadius * math.Sqrt(rng.Float64())
		ref := geom.FromPolar(refDist, refAngle)

		var b Builder
		for now := 0.0; ; now += epoch {
			center := centers[group].At(now)
			jitter := geom.Vec{}
			if m.LocalJitter > 0 {
				a := rng.Float64() * 2 * math.Pi
				d := m.LocalJitter * math.Sqrt(rng.Float64())
				jitter = geom.FromPolar(d, a)
			}
			b.Append(now, m.Area.Clamp(center.Add(ref).Add(jitter)))
			if now >= duration {
				break
			}
		}
		tr, err := b.Build()
		if err != nil {
			return nil, err
		}
		out[i] = tr
	}
	return out, nil
}
