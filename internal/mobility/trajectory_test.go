package mobility

import (
	"math"
	"testing"
	"testing/quick"

	"mobic/internal/geom"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func buildTraj(t *testing.T, pts ...struct {
	tm float64
	p  geom.Point
}) *Trajectory {
	t.Helper()
	var b Builder
	for _, wp := range pts {
		b.Append(wp.tm, wp.p)
	}
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func wp(tm float64, x, y float64) struct {
	tm float64
	p  geom.Point
} {
	return struct {
		tm float64
		p  geom.Point
	}{tm, geom.Point{X: x, Y: y}}
}

func TestBuilderRejectsEmptyAndUnordered(t *testing.T) {
	var empty Builder
	if _, err := empty.Build(); err == nil {
		t.Error("empty builder should error")
	}
	var bad Builder
	bad.Append(5, geom.Point{}).Append(3, geom.Point{})
	if _, err := bad.Build(); err == nil {
		t.Error("out-of-order times should error")
	}
}

func TestBuilderCollapsesEqualTimes(t *testing.T) {
	var b Builder
	b.Append(1, geom.Point{X: 1}).Append(1, geom.Point{X: 2})
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if tr.Waypoints() != 1 {
		t.Errorf("Waypoints = %d, want 1 (collapsed)", tr.Waypoints())
	}
	if tr.At(1).X != 2 {
		t.Errorf("last point should win on equal times, got %v", tr.At(1))
	}
}

func TestTrajectoryInterpolation(t *testing.T) {
	tr := buildTraj(t, wp(0, 0, 0), wp(10, 100, 0), wp(20, 100, 50))
	tests := []struct {
		tm   float64
		want geom.Point
	}{
		{tm: -5, want: geom.Point{X: 0, Y: 0}},   // before start
		{tm: 0, want: geom.Point{X: 0, Y: 0}},    // first waypoint
		{tm: 5, want: geom.Point{X: 50, Y: 0}},   // mid-leg
		{tm: 10, want: geom.Point{X: 100, Y: 0}}, // exact waypoint
		{tm: 15, want: geom.Point{X: 100, Y: 25}},
		{tm: 20, want: geom.Point{X: 100, Y: 50}},
		{tm: 99, want: geom.Point{X: 100, Y: 50}}, // past end
	}
	for _, tt := range tests {
		got := tr.At(tt.tm)
		if !almostEqual(got.X, tt.want.X, 1e-9) || !almostEqual(got.Y, tt.want.Y, 1e-9) {
			t.Errorf("At(%v) = %v, want %v", tt.tm, got, tt.want)
		}
	}
}

func TestTrajectoryVelocity(t *testing.T) {
	tr := buildTraj(t, wp(0, 0, 0), wp(10, 100, 0), wp(20, 100, 0))
	v := tr.VelocityAt(5)
	if !almostEqual(v.X, 10, 1e-9) || !almostEqual(v.Y, 0, 1e-9) {
		t.Errorf("VelocityAt(5) = %v, want (10, 0)", v)
	}
	// Pause leg has zero velocity.
	if got := tr.VelocityAt(15); got.Len() != 0 {
		t.Errorf("VelocityAt during pause = %v, want zero", got)
	}
	// Outside the span.
	if got := tr.VelocityAt(-1); got.Len() != 0 {
		t.Errorf("VelocityAt before start = %v, want zero", got)
	}
	if got := tr.VelocityAt(25); got.Len() != 0 {
		t.Errorf("VelocityAt past end = %v, want zero", got)
	}
	// At a waypoint time the next leg's velocity is reported.
	v = tr.VelocityAt(0)
	if !almostEqual(v.X, 10, 1e-9) {
		t.Errorf("VelocityAt(0) = %v, want next-leg (10, 0)", v)
	}
}

func TestTrajectoryAccessors(t *testing.T) {
	tr := buildTraj(t, wp(2, 0, 0), wp(12, 10, 0))
	if tr.Start() != 2 || tr.End() != 12 {
		t.Errorf("Start/End = %v/%v", tr.Start(), tr.End())
	}
	if tr.Waypoints() != 2 {
		t.Errorf("Waypoints = %d", tr.Waypoints())
	}
	if !almostEqual(tr.MaxSpeed(), 1, 1e-9) {
		t.Errorf("MaxSpeed = %v, want 1", tr.MaxSpeed())
	}
}

func TestStaticTrajectory(t *testing.T) {
	tr := StaticTrajectory(geom.Point{X: 7, Y: 8})
	for _, tm := range []float64{0, 100, 1e6} {
		if tr.At(tm) != (geom.Point{X: 7, Y: 8}) {
			t.Errorf("static At(%v) moved", tm)
		}
	}
	if tr.MaxSpeed() != 0 {
		t.Error("static trajectory should have zero max speed")
	}
}

// Property: position along any leg is continuous — small dt implies small move.
func TestTrajectoryContinuityProperty(t *testing.T) {
	tr := buildTraj(t, wp(0, 0, 0), wp(10, 50, 30), wp(25, 0, 100), wp(40, 80, 80))
	continuity := func(tSeed uint16, dtSeed uint8) bool {
		tm := float64(tSeed) / 65535 * 40
		dt := float64(dtSeed) / 255 * 0.1
		p1, p2 := tr.At(tm), tr.At(tm+dt)
		// Max leg speed in this trajectory is < 10 m/s.
		return p1.Dist(p2) <= 10*dt+1e-9
	}
	if err := quick.Check(continuity, nil); err != nil {
		t.Error(err)
	}
}
