// Package mobility generates node movement for the MANET simulator. It plays
// the role of the CMU `setdest` scenario generator the paper used: every
// model produces, per node, a piecewise-linear trajectory covering the whole
// simulation, which the channel then samples at packet times.
//
// Models provided:
//
//   - RandomWaypoint — the paper's workload (Table 1: MaxSpeed, Pause Time).
//   - RandomWalk and GaussMarkov — alternative entity models for robustness
//     studies.
//   - RPGM — Reference Point Group Mobility (paper Section 2.2), used by the
//     disaster-relief example.
//   - Highway and Conference — the paper's Section 5 target scenarios.
//   - Static — degenerate baseline for unit tests and convergence checks.
//
// All models draw every random number from named substreams of the scenario
// seed (internal/sim.Streams), so a scenario is a pure function of its seed.
package mobility

import (
	"errors"
	"fmt"
	"sort"

	"mobic/internal/geom"
)

// Trajectory is a piecewise-linear path: the node moves at constant velocity
// between consecutive waypoints. Waypoint times are strictly increasing;
// repeating a position across two waypoints encodes a pause.
type Trajectory struct {
	times  []float64
	points []geom.Point
}

// errTrajectory diagnoses misuse of the Builder.
var (
	errEmptyTrajectory = errors.New("mobility: trajectory needs at least one waypoint")
	errTimeOrder       = errors.New("mobility: waypoint times must be non-decreasing")
)

// Builder incrementally constructs a Trajectory.
type Builder struct {
	times  []float64
	points []geom.Point
	err    error
}

// Append adds a waypoint at time t. Times must be non-decreasing; equal
// times are collapsed (last point wins) so models can emit zero-length legs
// without special-casing.
func (b *Builder) Append(t float64, p geom.Point) *Builder {
	if b.err != nil {
		return b
	}
	if n := len(b.times); n > 0 {
		last := b.times[n-1]
		if t < last {
			b.err = fmt.Errorf("%w: %g after %g", errTimeOrder, t, last)
			return b
		}
		if t == last {
			b.points[n-1] = p
			return b
		}
	}
	b.times = append(b.times, t)
	b.points = append(b.points, p)
	return b
}

// Build finalizes the trajectory. It returns an error if no waypoints were
// appended or if Append ever saw out-of-order times.
func (b *Builder) Build() (*Trajectory, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.times) == 0 {
		return nil, errEmptyTrajectory
	}
	return &Trajectory{times: b.times, points: b.points}, nil
}

// At returns the position at time t. Before the first waypoint the node sits
// at its initial position; after the last it stays at the final position.
func (tr *Trajectory) At(t float64) geom.Point {
	n := len(tr.times)
	if t <= tr.times[0] {
		return tr.points[0]
	}
	if t >= tr.times[n-1] {
		return tr.points[n-1]
	}
	// Index of the first waypoint with time > t.
	i := sort.SearchFloat64s(tr.times, t)
	if tr.times[i] == t {
		return tr.points[i]
	}
	t0, t1 := tr.times[i-1], tr.times[i]
	frac := (t - t0) / (t1 - t0)
	return geom.Lerp(tr.points[i-1], tr.points[i], frac)
}

// VelocityAt returns the instantaneous velocity at time t (zero outside the
// trajectory's span and during pauses). At an exact waypoint time it reports
// the velocity of the following leg.
func (tr *Trajectory) VelocityAt(t float64) geom.Vec {
	n := len(tr.times)
	if t < tr.times[0] || t >= tr.times[n-1] {
		return geom.Vec{}
	}
	i := sort.SearchFloat64s(tr.times, t)
	if i < n && tr.times[i] == t {
		i++ // velocity of the leg starting at this waypoint
	}
	if i <= 0 || i >= n {
		return geom.Vec{}
	}
	dt := tr.times[i] - tr.times[i-1]
	if dt <= 0 {
		return geom.Vec{}
	}
	return tr.points[i].Sub(tr.points[i-1]).Scale(1 / dt)
}

// Start returns the time of the first waypoint.
func (tr *Trajectory) Start() float64 { return tr.times[0] }

// End returns the time of the last waypoint.
func (tr *Trajectory) End() float64 { return tr.times[len(tr.times)-1] }

// Waypoints returns the number of waypoints.
func (tr *Trajectory) Waypoints() int { return len(tr.times) }

// MaxSpeed returns the highest leg speed in m/s, a sanity check used by
// tests to verify models respect their speed caps.
func (tr *Trajectory) MaxSpeed() float64 {
	var maxV float64
	for i := 1; i < len(tr.times); i++ {
		dt := tr.times[i] - tr.times[i-1]
		if dt <= 0 {
			continue
		}
		v := tr.points[i].Dist(tr.points[i-1]) / dt
		if v > maxV {
			maxV = v
		}
	}
	return maxV
}

// StaticTrajectory returns a trajectory pinned at p forever.
func StaticTrajectory(p geom.Point) *Trajectory {
	return &Trajectory{times: []float64{0}, points: []geom.Point{p}}
}
