// Package metrics collects the paper's evaluation measurements while a
// scenario runs: the cluster-stability metric CS (number of clusterhead
// changes, Section 4.1), the average number of clusters (Figure 4),
// clusterhead residence times, per-role occupancy and message counts.
package metrics

import (
	"math"

	"mobic/internal/cluster"
	"mobic/internal/stats"
)

// Recorder accumulates clustering metrics for one simulation run. Create
// with NewRecorder; wire RoleChange/HeadChange into the cluster nodes'
// hooks, call SampleClusters periodically, and Finalize at the end.
//
// Events before the warm-up horizon are ignored, so the initial election
// storm can be excluded when comparing maintenance-phase stability. The
// paper does not state its counting convention; the default warm-up of 0
// counts everything, and the experiment harness reports both.
type Recorder struct {
	warmup float64

	chAcquisitions int
	chLosses       int
	headChanges    int

	clusterSamples stats.Accumulator
	gatewaySamples stats.Accumulator
	sizeSamples    stats.Accumulator
	largestSamples stats.Accumulator
	compSamples    stats.Accumulator
	compFracSample stats.Accumulator

	headSince  []float64 // per node: time it became head, NaN when not head
	headTime   []float64 // per node: cumulative time spent as head
	residence  stats.Accumulator
	residences []float64 // every closed head tenure, for distributions

	broadcasts uint64
	deliveries uint64
	drops      uint64
	collisions uint64
	bytesSent  uint64

	windowSize float64
	windows    []int

	finalized bool
	endTime   float64
}

// NewRecorder returns a recorder for n nodes ignoring events before warmup
// seconds.
func NewRecorder(n int, warmup float64) *Recorder {
	r := &Recorder{
		warmup:    warmup,
		headSince: make([]float64, n),
		headTime:  make([]float64, n),
	}
	for i := range r.headSince {
		r.headSince[i] = math.NaN()
	}
	return r
}

// SetTimelineWindow enables per-window clusterhead-change counting with the
// given window size in seconds. Call before the simulation starts.
func (r *Recorder) SetTimelineWindow(size float64) {
	if size > 0 {
		r.windowSize = size
	}
}

// recordWindowed buckets one CH change into its time window.
func (r *Recorder) recordWindowed(now float64) {
	if r.windowSize <= 0 {
		return
	}
	idx := int(now / r.windowSize)
	for len(r.windows) <= idx {
		r.windows = append(r.windows, 0)
	}
	r.windows[idx]++
}

// RoleChange records a role transition for node id at time now. It must be
// called for every transition, including those during warm-up (residence
// bookkeeping needs them); counting respects the warm-up internally.
func (r *Recorder) RoleChange(now float64, id int32, old, new cluster.Role) {
	enteringHead := new == cluster.RoleHead && old != cluster.RoleHead
	leavingHead := old == cluster.RoleHead && new != cluster.RoleHead
	if enteringHead || leavingHead {
		r.recordWindowed(now)
	}

	if enteringHead {
		r.headSince[id] = now
		if now >= r.warmup {
			r.chAcquisitions++
		}
	}
	if leavingHead {
		if since := r.headSince[id]; !math.IsNaN(since) {
			start := math.Max(since, r.warmup)
			if now > start {
				r.residence.Add(now - start)
				r.residences = append(r.residences, now-start)
				r.headTime[id] += now - start
			}
		}
		r.headSince[id] = math.NaN()
		if now >= r.warmup {
			r.chLosses++
		}
	}
}

// HeadChange records a clusterhead affiliation change (membership change).
// Transitions to or from "no head" count; self-affiliation on becoming head
// is already covered by RoleChange and is not double counted here.
func (r *Recorder) HeadChange(now float64, id int32, oldHead, newHead int32) {
	if now < r.warmup {
		return
	}
	if newHead == id || oldHead == id {
		return // role transition, counted by RoleChange
	}
	r.headChanges++
}

// SampleClusters records one periodic observation of the number of
// clusterheads and gateways.
func (r *Recorder) SampleClusters(now float64, heads, gateways int) {
	if now < r.warmup {
		return
	}
	r.clusterSamples.Add(float64(heads))
	r.gatewaySamples.Add(float64(gateways))
}

// SampleClusterSizes records one periodic observation of the cluster size
// distribution (each entry = members + head of one cluster).
func (r *Recorder) SampleClusterSizes(now float64, sizes []int) {
	if now < r.warmup || len(sizes) == 0 {
		return
	}
	largest := 0
	var sum float64
	for _, s := range sizes {
		sum += float64(s)
		if s > largest {
			largest = s
		}
	}
	r.sizeSamples.Add(sum / float64(len(sizes)))
	r.largestSamples.Add(float64(largest))
}

// SampleTopology records one observation of the physical topology's health:
// the number of connected components and the fraction of nodes in the
// largest one. The paper's low-Tx regime ("severe disconnections in the
// topology") is visible through exactly these numbers.
func (r *Recorder) SampleTopology(now float64, components, largest, n int) {
	if now < r.warmup || n == 0 {
		return
	}
	r.compSamples.Add(float64(components))
	r.compFracSample.Add(float64(largest) / float64(n))
}

// CountBroadcast tallies one hello transmission of the given size in bytes.
func (r *Recorder) CountBroadcast(bytes int) {
	r.broadcasts++
	r.bytesSent += uint64(bytes)
}

// CountDelivery tallies one hello reception.
func (r *Recorder) CountDelivery() { r.deliveries++ }

// CountDrop tallies one hello lost to the loss model.
func (r *Recorder) CountDrop() { r.drops++ }

// CountCollision tallies one hello destroyed by a MAC collision.
func (r *Recorder) CountCollision() { r.collisions++ }

// Finalize closes open clusterhead residence intervals at end time. Must be
// called exactly once, after the simulation completes.
func (r *Recorder) Finalize(end float64) {
	if r.finalized {
		return
	}
	r.finalized = true
	r.endTime = end
	for i := range r.headSince {
		if since := r.headSince[i]; !math.IsNaN(since) {
			start := math.Max(since, r.warmup)
			if end > start {
				r.residence.Add(end - start)
				r.residences = append(r.residences, end-start)
				r.headTime[i] += end - start
			}
		}
	}
}

// ResidenceDurations returns every recorded clusterhead tenure in seconds
// (order unspecified), for distribution analysis. The slice is a copy.
func (r *Recorder) ResidenceDurations() []float64 {
	return append([]float64(nil), r.residences...)
}

// HeadTimeFairness returns Jain's fairness index over the per-node
// clusterhead duty time: 1 when every node served equally, 1/n when one
// node carried the whole burden. A structural-fairness lens on clusterhead
// selection (Lowest-ID pins duty on low IDs; MOBIC pins it on slow nodes).
func (r *Recorder) HeadTimeFairness() float64 {
	var sum, sumSq float64
	for _, t := range r.headTime {
		sum += t
		sumSq += t * t
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(r.headTime)) * sumSq)
}

// Result is the summary of one run.
// Result's JSON field names are a stable wire format: experiment cell
// results embed it and the mobicd API serves it, so renaming a tag is a
// breaking change (pinned by internal/experiment's golden-file test).
type Result struct {
	// CHChanges is the paper's cluster-stability metric CS: every
	// transition of any node into or out of clusterhead status.
	CHChanges int `json:"ch_changes"`
	// CHAcquisitions counts non-head -> head transitions only.
	CHAcquisitions int `json:"ch_acquisitions"`
	// CHLosses counts head -> non-head transitions only.
	CHLosses int `json:"ch_losses"`
	// MembershipChanges counts members switching between clusterheads.
	MembershipChanges int `json:"membership_changes"`
	// AvgClusters is the time-averaged number of clusterheads (Figure 4).
	AvgClusters float64 `json:"avg_clusters"`
	// AvgGateways is the time-averaged number of gateway nodes.
	AvgGateways float64 `json:"avg_gateways"`
	// AvgClusterSize is the time-averaged mean cluster size (nodes per
	// cluster, heads included).
	AvgClusterSize float64 `json:"avg_cluster_size"`
	// AvgLargestCluster is the time-averaged largest cluster size.
	AvgLargestCluster float64 `json:"avg_largest_cluster"`
	// AvgComponents is the time-averaged number of connected components
	// of the physical topology.
	AvgComponents float64 `json:"avg_components"`
	// AvgLargestComponentFrac is the time-averaged fraction of nodes in
	// the largest connected component.
	AvgLargestComponentFrac float64 `json:"avg_largest_component_frac"`
	// MeanResidence is the mean clusterhead tenure in seconds.
	MeanResidence float64 `json:"mean_residence"`
	// HeadTimeFairness is Jain's fairness index over per-node head duty.
	HeadTimeFairness float64 `json:"head_time_fairness"`
	// ResidenceCount is the number of closed tenures measured.
	ResidenceCount int `json:"residence_count"`
	// Broadcasts, Deliveries and Drops are hello message tallies.
	Broadcasts uint64 `json:"broadcasts"`
	Deliveries uint64 `json:"deliveries"`
	Drops      uint64 `json:"drops"`
	// Collisions counts hellos destroyed by the MAC collision model.
	Collisions uint64 `json:"collisions"`
	// BytesSent is the total hello payload bytes transmitted; the paper
	// notes MOBIC's hello grows by exactly 8 bytes (one float64 for M).
	BytesSent uint64 `json:"bytes_sent"`
	// Duration is the simulated time span the metrics cover.
	Duration float64 `json:"duration"`
}

// Snapshot returns the accumulated metrics. Call after Finalize.
func (r *Recorder) Snapshot() Result {
	return Result{
		CHChanges:               r.chAcquisitions + r.chLosses,
		CHAcquisitions:          r.chAcquisitions,
		CHLosses:                r.chLosses,
		MembershipChanges:       r.headChanges,
		AvgClusters:             r.clusterSamples.Mean(),
		AvgGateways:             r.gatewaySamples.Mean(),
		AvgClusterSize:          r.sizeSamples.Mean(),
		AvgLargestCluster:       r.largestSamples.Mean(),
		AvgComponents:           r.compSamples.Mean(),
		AvgLargestComponentFrac: r.compFracSample.Mean(),
		MeanResidence:           r.residence.Mean(),
		HeadTimeFairness:        r.HeadTimeFairness(),
		ResidenceCount:          r.residence.N(),
		Broadcasts:              r.broadcasts,
		Deliveries:              r.deliveries,
		Drops:                   r.drops,
		Collisions:              r.collisions,
		BytesSent:               r.bytesSent,
		Duration:                math.Max(0, r.endTime-r.warmup),
	}
}

// Timeline returns the per-window CH-change counts (nil when no timeline
// window was configured) and the window size. Unlike the scalar counters it
// includes warm-up windows, so formation bursts stay visible.
func (r *Recorder) Timeline() ([]int, float64) {
	return append([]int(nil), r.windows...), r.windowSize
}
