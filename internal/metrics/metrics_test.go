package metrics

import (
	"math"
	"testing"

	"mobic/internal/cluster"
)

func TestCHChangeCounting(t *testing.T) {
	r := NewRecorder(5, 0)
	// Node 0: undecided -> head (1 change), head -> member (1 change).
	r.RoleChange(10, 0, cluster.RoleUndecided, cluster.RoleHead)
	r.RoleChange(20, 0, cluster.RoleHead, cluster.RoleMember)
	// Node 1: undecided -> member (no CH change).
	r.RoleChange(10, 1, cluster.RoleUndecided, cluster.RoleMember)
	r.Finalize(100)
	res := r.Snapshot()
	if res.CHChanges != 2 {
		t.Errorf("CHChanges = %d, want 2", res.CHChanges)
	}
	if res.CHAcquisitions != 1 || res.CHLosses != 1 {
		t.Errorf("acq/loss = %d/%d, want 1/1", res.CHAcquisitions, res.CHLosses)
	}
}

func TestWarmupExcludesEarlyEvents(t *testing.T) {
	r := NewRecorder(3, 50)
	r.RoleChange(10, 0, cluster.RoleUndecided, cluster.RoleHead) // before warmup
	r.RoleChange(60, 0, cluster.RoleHead, cluster.RoleMember)    // after
	r.Finalize(100)
	res := r.Snapshot()
	if res.CHAcquisitions != 0 {
		t.Errorf("acquisitions = %d, want 0 (during warmup)", res.CHAcquisitions)
	}
	if res.CHLosses != 1 {
		t.Errorf("losses = %d, want 1", res.CHLosses)
	}
	if res.CHChanges != 1 {
		t.Errorf("CHChanges = %d, want 1", res.CHChanges)
	}
}

func TestResidenceTime(t *testing.T) {
	r := NewRecorder(2, 0)
	r.RoleChange(10, 0, cluster.RoleUndecided, cluster.RoleHead)
	r.RoleChange(40, 0, cluster.RoleHead, cluster.RoleMember) // 30 s tenure
	r.RoleChange(50, 1, cluster.RoleUndecided, cluster.RoleHead)
	r.Finalize(100) // node 1 still head: 50 s open tenure closed at end
	res := r.Snapshot()
	if res.ResidenceCount != 2 {
		t.Fatalf("ResidenceCount = %d, want 2", res.ResidenceCount)
	}
	if math.Abs(res.MeanResidence-40) > 1e-9 { // (30+50)/2
		t.Errorf("MeanResidence = %v, want 40", res.MeanResidence)
	}
}

func TestResidenceClippedByWarmup(t *testing.T) {
	r := NewRecorder(1, 20)
	r.RoleChange(0, 0, cluster.RoleUndecided, cluster.RoleHead)
	r.RoleChange(30, 0, cluster.RoleHead, cluster.RoleUndecided)
	r.Finalize(100)
	res := r.Snapshot()
	// Tenure counted only from warmup (20) to 30 = 10 s.
	if math.Abs(res.MeanResidence-10) > 1e-9 {
		t.Errorf("MeanResidence = %v, want 10 (warmup-clipped)", res.MeanResidence)
	}
}

func TestResidenceDurations(t *testing.T) {
	r := NewRecorder(2, 0)
	r.RoleChange(10, 0, cluster.RoleUndecided, cluster.RoleHead)
	r.RoleChange(40, 0, cluster.RoleHead, cluster.RoleMember) // 30 s
	r.RoleChange(50, 1, cluster.RoleUndecided, cluster.RoleHead)
	r.Finalize(100) // 50 s open tenure
	ds := r.ResidenceDurations()
	if len(ds) != 2 {
		t.Fatalf("durations = %v", ds)
	}
	sum := ds[0] + ds[1]
	if sum != 80 {
		t.Errorf("duration sum = %v, want 80", sum)
	}
	// The returned slice is a copy.
	ds[0] = -1
	if r.ResidenceDurations()[0] == -1 {
		t.Error("ResidenceDurations should return a copy")
	}
}

func TestMembershipChanges(t *testing.T) {
	r := NewRecorder(3, 0)
	r.HeadChange(10, 2, cluster.NoHead, 0) // joined cluster 0
	r.HeadChange(20, 2, 0, 1)              // switched to cluster 1
	r.HeadChange(30, 2, 1, 2)              // became head itself: not counted
	r.HeadChange(40, 2, 2, 0)              // resigned into cluster 0: not counted
	r.Finalize(100)
	res := r.Snapshot()
	if res.MembershipChanges != 2 {
		t.Errorf("MembershipChanges = %d, want 2", res.MembershipChanges)
	}
}

func TestClusterSampling(t *testing.T) {
	r := NewRecorder(10, 10)
	r.SampleClusters(5, 100, 50) // during warmup: ignored
	r.SampleClusters(20, 4, 1)
	r.SampleClusters(30, 6, 3)
	r.Finalize(100)
	res := r.Snapshot()
	if res.AvgClusters != 5 {
		t.Errorf("AvgClusters = %v, want 5", res.AvgClusters)
	}
	if res.AvgGateways != 2 {
		t.Errorf("AvgGateways = %v, want 2", res.AvgGateways)
	}
}

func TestHeadTimeFairness(t *testing.T) {
	// Node 0 heads for 40 s, node 1 for 40 s, node 2 never: Jain over
	// [40, 40, 0] = 6400/(3*3200) = 2/3.
	r := NewRecorder(3, 0)
	r.RoleChange(0, 0, cluster.RoleUndecided, cluster.RoleHead)
	r.RoleChange(40, 0, cluster.RoleHead, cluster.RoleMember)
	r.RoleChange(40, 1, cluster.RoleUndecided, cluster.RoleHead)
	r.RoleChange(80, 1, cluster.RoleHead, cluster.RoleMember)
	r.Finalize(100)
	if got := r.Snapshot().HeadTimeFairness; math.Abs(got-2.0/3.0) > 1e-9 {
		t.Errorf("fairness = %v, want 2/3", got)
	}
}

func TestHeadTimeFairnessPerfect(t *testing.T) {
	r := NewRecorder(2, 0)
	r.RoleChange(0, 0, cluster.RoleUndecided, cluster.RoleHead)
	r.RoleChange(50, 0, cluster.RoleHead, cluster.RoleMember)
	r.RoleChange(50, 1, cluster.RoleUndecided, cluster.RoleHead)
	r.Finalize(100) // both served 50 s
	if got := r.Snapshot().HeadTimeFairness; math.Abs(got-1) > 1e-9 {
		t.Errorf("fairness = %v, want 1", got)
	}
}

func TestHeadTimeFairnessNoHeads(t *testing.T) {
	r := NewRecorder(3, 0)
	r.Finalize(100)
	if got := r.Snapshot().HeadTimeFairness; got != 0 {
		t.Errorf("fairness with no head time = %v, want 0", got)
	}
}

func TestClusterSizeSampling(t *testing.T) {
	r := NewRecorder(10, 10)
	r.SampleClusterSizes(5, []int{100})      // warmup: ignored
	r.SampleClusterSizes(20, []int{2, 4, 6}) // mean 4, largest 6
	r.SampleClusterSizes(30, []int{8})       // mean 8, largest 8
	r.SampleClusterSizes(40, nil)            // empty: ignored
	r.Finalize(100)
	res := r.Snapshot()
	if res.AvgClusterSize != 6 {
		t.Errorf("AvgClusterSize = %v, want 6 ((4+8)/2)", res.AvgClusterSize)
	}
	if res.AvgLargestCluster != 7 {
		t.Errorf("AvgLargestCluster = %v, want 7 ((6+8)/2)", res.AvgLargestCluster)
	}
}

func TestMessageTallies(t *testing.T) {
	r := NewRecorder(1, 0)
	r.CountBroadcast(20)
	r.CountBroadcast(20)
	r.CountDelivery()
	r.CountDrop()
	r.CountCollision()
	r.Finalize(10)
	res := r.Snapshot()
	if res.Broadcasts != 2 || res.Deliveries != 1 || res.Drops != 1 {
		t.Errorf("tallies = %d/%d/%d", res.Broadcasts, res.Deliveries, res.Drops)
	}
	if res.BytesSent != 40 {
		t.Errorf("BytesSent = %d, want 40", res.BytesSent)
	}
	if res.Collisions != 1 {
		t.Errorf("Collisions = %d, want 1", res.Collisions)
	}
}

func TestFinalizeIdempotent(t *testing.T) {
	r := NewRecorder(1, 0)
	r.RoleChange(0, 0, cluster.RoleUndecided, cluster.RoleHead)
	r.Finalize(100)
	r.Finalize(200) // second call must be a no-op
	res := r.Snapshot()
	if res.ResidenceCount != 1 {
		t.Errorf("ResidenceCount = %d, want 1 (no double close)", res.ResidenceCount)
	}
	if res.Duration != 100 {
		t.Errorf("Duration = %v, want 100", res.Duration)
	}
}

func TestTimelineBuckets(t *testing.T) {
	r := NewRecorder(3, 0)
	r.SetTimelineWindow(10)
	r.RoleChange(1, 0, cluster.RoleUndecided, cluster.RoleHead)   // window 0
	r.RoleChange(5, 1, cluster.RoleUndecided, cluster.RoleMember) // not a CH change
	r.RoleChange(15, 0, cluster.RoleHead, cluster.RoleMember)     // window 1
	r.RoleChange(35, 1, cluster.RoleMember, cluster.RoleHead)     // window 3
	r.Finalize(40)
	windows, size := r.Timeline()
	if size != 10 {
		t.Errorf("window size = %v", size)
	}
	want := []int{1, 1, 0, 1}
	if len(windows) != len(want) {
		t.Fatalf("windows = %v, want %v", windows, want)
	}
	for i := range want {
		if windows[i] != want[i] {
			t.Errorf("window %d = %d, want %d", i, windows[i], want[i])
		}
	}
}

func TestTimelineDisabledByDefault(t *testing.T) {
	r := NewRecorder(1, 0)
	r.RoleChange(1, 0, cluster.RoleUndecided, cluster.RoleHead)
	windows, size := r.Timeline()
	if len(windows) != 0 || size != 0 {
		t.Errorf("timeline should be disabled by default: %v, %v", windows, size)
	}
}

func TestTimelineIncludesWarmup(t *testing.T) {
	// Unlike scalar counters, the timeline keeps warm-up windows so the
	// formation burst is visible.
	r := NewRecorder(1, 100)
	r.SetTimelineWindow(10)
	r.RoleChange(5, 0, cluster.RoleUndecided, cluster.RoleHead)
	r.Finalize(200)
	windows, _ := r.Timeline()
	if len(windows) == 0 || windows[0] != 1 {
		t.Errorf("warm-up window should be recorded in the timeline: %v", windows)
	}
	if r.Snapshot().CHAcquisitions != 0 {
		t.Error("scalar counter must still respect warm-up")
	}
}

func TestSetTimelineWindowRejectsNonPositive(t *testing.T) {
	r := NewRecorder(1, 0)
	r.SetTimelineWindow(0)
	r.SetTimelineWindow(-5)
	r.RoleChange(1, 0, cluster.RoleUndecided, cluster.RoleHead)
	if windows, _ := r.Timeline(); len(windows) != 0 {
		t.Error("non-positive window sizes should leave the timeline disabled")
	}
}

func TestDurationRespectsWarmup(t *testing.T) {
	r := NewRecorder(1, 100)
	r.Finalize(900)
	if got := r.Snapshot().Duration; got != 800 {
		t.Errorf("Duration = %v, want 800", got)
	}
}
