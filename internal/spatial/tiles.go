package spatial

import (
	"fmt"
	"math"

	"mobic/internal/geom"
)

// Tiling partitions a uniform cell grid into K rectangular-ish tiles — the
// spatial shard key of the tiled-parallel simulation engine. Each grid cell
// (and through it, each position in the area) maps to exactly one tile;
// ticking senders are grouped by tile so one goroutine plans a spatially
// coherent batch of broadcasts against the same few Snapshot cells.
//
// Tile boundaries can be shifted by an offset (in cells). The offset rotates
// the cell-to-tile assignment, which moves every boundary without changing
// the partition property — the metamorphic oracle in internal/harness uses
// it to prove that simulation results cannot depend on where tile edges
// fall.
//
// A Tiling is immutable after construction and safe for concurrent use.
type Tiling struct {
	area     geom.Rect
	cellSize float64
	cols     int
	rows     int
	kx, ky   int
	offX     int
	offY     int
	// halo caches the halo adjacency computed by Halo, keyed by the radius
	// it was computed for (one radius per engine run).
	haloRadius float64
	halo       [][]int32
}

// NewTiling builds a tiling of the area's cell grid (the same cell geometry
// NewGrid derives: ceil(extent/cellSize) per axis) into at most `tiles`
// tiles, with tile boundaries shifted by offsetCells. The tile count is
// factored into a kx x ky tile grid matching the area's aspect ratio and
// clamped so no tile is empty; Tiles reports the count actually used.
func NewTiling(area geom.Rect, cellSize float64, tiles, offsetCells int) (*Tiling, error) {
	if !area.Valid() {
		return nil, fmt.Errorf("spatial: invalid area %v", area)
	}
	if cellSize <= 0 || math.IsNaN(cellSize) {
		return nil, fmt.Errorf("spatial: invalid cell size %g", cellSize)
	}
	if tiles < 1 {
		return nil, fmt.Errorf("spatial: tile count %d < 1", tiles)
	}
	if offsetCells < 0 {
		return nil, fmt.Errorf("spatial: tile offset %d < 0", offsetCells)
	}
	cols := int(math.Ceil(area.Width() / cellSize))
	rows := int(math.Ceil(area.Height() / cellSize))
	if cols < 1 {
		cols = 1
	}
	if rows < 1 {
		rows = 1
	}
	kx, ky := splitTiles(tiles, cols, rows)
	return &Tiling{
		area:     area,
		cellSize: cellSize,
		cols:     cols,
		rows:     rows,
		kx:       kx,
		ky:       ky,
		offX:     offsetCells % cols,
		offY:     offsetCells % rows,
	}, nil
}

// splitTiles factors k into kx*ky with kx/ky tracking cols/rows (the longer
// axis gets the larger factor), clamped so kx <= cols and ky <= rows. The
// result may multiply to less than k when the grid is too small to hold k
// non-empty tiles.
func splitTiles(k, cols, rows int) (kx, ky int) {
	// Largest divisor of k not exceeding sqrt(k); its cofactor is >= it.
	small := 1
	for d := 1; d*d <= k; d++ {
		if k%d == 0 {
			small = d
		}
	}
	large := k / small
	if cols >= rows {
		kx, ky = large, small
	} else {
		kx, ky = small, large
	}
	if kx > cols {
		kx = cols
	}
	if ky > rows {
		ky = rows
	}
	return kx, ky
}

// Tiles returns the number of tiles in the partition.
func (t *Tiling) Tiles() int { return t.kx * t.ky }

// Cols and Rows return the underlying cell-grid dimensions.
func (t *Tiling) Cols() int { return t.cols }

// Rows returns the cell-grid row count.
func (t *Tiling) Rows() int { return t.rows }

// TileOfCell maps cell (col, row) to its tile. Out-of-range cells are
// clamped, mirroring the grid's treatment of positions beyond the area.
func (t *Tiling) TileOfCell(col, row int) int {
	col = clampInt(col, 0, t.cols-1)
	row = clampInt(row, 0, t.rows-1)
	// The offset rotates the cell axes before the even division, so every
	// boundary moves while each cell keeps exactly one tile.
	tc := ((col + t.offX) % t.cols) * t.kx / t.cols
	tr := ((row + t.offY) % t.rows) * t.ky / t.rows
	return tr*t.kx + tc
}

// TileOf maps a position to its tile via the cell it falls in (positions
// outside the area clamp to the boundary cells, like Grid.Update).
func (t *Tiling) TileOf(p geom.Point) int {
	c := t.area.Clamp(p)
	col := int((c.X - t.area.MinX) / t.cellSize)
	row := int((c.Y - t.area.MinY) / t.cellSize)
	return t.TileOfCell(col, row)
}

// Halo returns, for every tile, the sorted list of other tiles owning at
// least one cell within `radius` (in meters, measured in whole cells —
// Chebyshev distance ceil(radius/cellSize)) of one of its cells. This is the
// halo-exchange relation of the conservative engine: a tile's broadcasts can
// only reach receivers in its own cells or in a halo neighbor's cells, so
// the relation bounds which tiles must observe each other's boundary state
// per synchronization window. The relation is symmetric by construction.
//
// The result is cached for the given radius; the engine queries one radius
// per run.
func (t *Tiling) Halo(radius float64) [][]int32 {
	if t.halo != nil && t.haloRadius == radius {
		return t.halo
	}
	h := 0
	if radius > 0 {
		h = int(math.Ceil(radius / t.cellSize))
	}
	k := t.Tiles()
	adj := make([]map[int32]struct{}, k)
	for i := range adj {
		adj[i] = make(map[int32]struct{})
	}
	for row := 0; row < t.rows; row++ {
		for col := 0; col < t.cols; col++ {
			a := t.TileOfCell(col, row)
			for dr := -h; dr <= h; dr++ {
				nr := row + dr
				if nr < 0 || nr >= t.rows {
					continue
				}
				for dc := -h; dc <= h; dc++ {
					nc := col + dc
					if nc < 0 || nc >= t.cols {
						continue
					}
					b := t.TileOfCell(nc, nr)
					if a != b {
						adj[a][int32(b)] = struct{}{}
						adj[b][int32(a)] = struct{}{}
					}
				}
			}
		}
	}
	out := make([][]int32, k)
	for tile, set := range adj {
		lst := make([]int32, 0, len(set))
		for b := range set {
			lst = append(lst, b)
		}
		// Insertion sort: halo lists are tiny (<= k-1).
		for i := 1; i < len(lst); i++ {
			for j := i; j > 0 && lst[j] < lst[j-1]; j-- {
				lst[j], lst[j-1] = lst[j-1], lst[j]
			}
		}
		out[tile] = lst
	}
	t.haloRadius = radius
	t.halo = out
	return out
}

// HaloPairs returns the number of directed halo-exchange pairs for radius:
// the sum of halo-neighbor counts over all tiles. The engine adds it to the
// halo-exchange counter once per synchronization window.
func (t *Tiling) HaloPairs(radius float64) int {
	total := 0
	for _, hs := range t.Halo(radius) {
		total += len(hs)
	}
	return total
}

// Snapshot is an immutable CSR (compressed sparse row) position index over
// one instant: node ids grouped by grid cell, with cells laid out row-major
// and ids ascending within each cell. The tiled engine rebuilds one Snapshot
// per synchronization window from the trajectory positions at the window
// start and shares it read-only across all tile goroutines — the
// "boundary-halo exchange" is a tile worker reading its halo neighbors'
// cells in this shared structure, with no copying and no locks.
//
// Fill reuses the backing arrays, so a Snapshot refreshed every window
// allocates nothing at steady state. Between Fill calls a Snapshot is safe
// for concurrent readers.
type Snapshot struct {
	area     geom.Rect
	cellSize float64
	cols     int
	rows     int
	// start[c] .. start[c+1] indexes ids for cell c.
	start []int32
	ids   []int32
	// pos is the caller's position slice, indexed by id; held, not copied.
	pos []geom.Point
	// cellOf is scratch for Fill: the cell of each id.
	cellOf []int32
}

// NewSnapshot builds an empty snapshot index with the same cell geometry as
// NewGrid over the area.
func NewSnapshot(area geom.Rect, cellSize float64) (*Snapshot, error) {
	if !area.Valid() {
		return nil, fmt.Errorf("spatial: invalid area %v", area)
	}
	if cellSize <= 0 || math.IsNaN(cellSize) {
		return nil, fmt.Errorf("spatial: invalid cell size %g", cellSize)
	}
	cols := int(math.Ceil(area.Width() / cellSize))
	rows := int(math.Ceil(area.Height() / cellSize))
	if cols < 1 {
		cols = 1
	}
	if rows < 1 {
		rows = 1
	}
	return &Snapshot{
		area:     area,
		cellSize: cellSize,
		cols:     cols,
		rows:     rows,
		start:    make([]int32, cols*rows+1),
	}, nil
}

// Len returns the number of indexed nodes.
func (s *Snapshot) Len() int { return len(s.ids) }

func (s *Snapshot) cellIndex(p geom.Point) int32 {
	c := s.area.Clamp(p)
	col := int((c.X - s.area.MinX) / s.cellSize)
	row := int((c.Y - s.area.MinY) / s.cellSize)
	if col >= s.cols {
		col = s.cols - 1
	}
	if row >= s.rows {
		row = s.rows - 1
	}
	return int32(row*s.cols + col)
}

// Fill (re)builds the index over pos, where pos[id] is node id's position.
// The slice is retained until the next Fill — callers must not mutate it
// while the snapshot is in use. Three passes: count per cell, prefix-sum,
// scatter in ascending id order (so each cell's id run is sorted).
func (s *Snapshot) Fill(pos []geom.Point) {
	s.pos = pos
	n := len(pos)
	if cap(s.ids) < n {
		s.ids = make([]int32, n)
		s.cellOf = make([]int32, n)
	}
	s.ids = s.ids[:n]
	s.cellOf = s.cellOf[:n]
	counts := s.start
	for i := range counts {
		counts[i] = 0
	}
	for id := 0; id < n; id++ {
		c := s.cellIndex(pos[id])
		s.cellOf[id] = c
		counts[c+1]++
	}
	for c := 1; c < len(counts); c++ {
		counts[c] += counts[c-1]
	}
	// counts now holds the start offsets; scatter advances a per-cell
	// cursor stored in cellOf's place... a second cursor array would
	// allocate, so scatter uses the offsets directly and restores them.
	for id := 0; id < n; id++ {
		c := s.cellOf[id]
		s.ids[counts[c]] = int32(id)
		counts[c]++
	}
	// counts[c] ended at start[c+1]; shift back down into start form.
	copy(counts[1:], counts[:len(counts)-1])
	counts[0] = 0
}

// Position returns the indexed position of id.
func (s *Snapshot) Position(id int32) geom.Point { return s.pos[id] }

// Cell returns the sorted ids in cell (col, row).
func (s *Snapshot) Cell(col, row int) []int32 {
	c := row*s.cols + col
	return s.ids[s.start[c]:s.start[c+1]]
}

// QueryRange appends to dst the ids of all nodes within radius of center
// (boundary inclusive), excluding `exclude` (negative excludes nothing), and
// returns the extended slice — the same contract as Grid.QueryRange, over
// the frozen positions. Results come out in cell order with ids ascending
// within a cell; callers needing globally ascending ids must sort.
func (s *Snapshot) QueryRange(center geom.Point, radius float64, exclude int32, dst []int32) []int32 {
	if radius < 0 || math.IsNaN(radius) {
		return dst
	}
	rSq := radius * radius
	minCol, maxCol := 0, s.cols-1
	minRow, maxRow := 0, s.rows-1
	if !math.IsInf(radius, 1) {
		minCol = clampInt(int(math.Floor((center.X-radius-s.area.MinX)/s.cellSize)), 0, s.cols-1)
		maxCol = clampInt(int(math.Floor((center.X+radius-s.area.MinX)/s.cellSize)), 0, s.cols-1)
		minRow = clampInt(int(math.Floor((center.Y-radius-s.area.MinY)/s.cellSize)), 0, s.rows-1)
		maxRow = clampInt(int(math.Floor((center.Y+radius-s.area.MinY)/s.cellSize)), 0, s.rows-1)
	}
	pos := s.pos
	for row := minRow; row <= maxRow; row++ {
		base := row * s.cols
		for col := minCol; col <= maxCol; col++ {
			c := base + col
			for _, id := range s.ids[s.start[c]:s.start[c+1]] {
				if id == exclude {
					continue
				}
				if pos[id].DistSq(center) <= rSq {
					dst = append(dst, id)
				}
			}
		}
	}
	return dst
}
