package spatial

import (
	"math"
	"math/rand/v2"
	"testing"

	"mobic/internal/geom"
)

// bruteForce is the O(N) reference oracle: every indexed node within radius
// of center, excluding `exclude`, in ascending id order.
func bruteForce(g *Grid, center geom.Point, radius float64, exclude int32) []int32 {
	var out []int32
	g.ForEach(func(id int32, p geom.Point) {
		if id == exclude {
			return
		}
		if p.DistSq(center) <= radius*radius {
			out = append(out, id)
		}
	})
	sortIDs(out)
	return out
}

// TestQueryRangeCellBoundaries pins the classic grid failure modes: points
// sitting exactly on cell edges and corners belong to exactly one cell, and
// queries whose disc touches a boundary must still search the cells on both
// sides. Every case is checked against the brute-force oracle, so the table
// documents the intent while the oracle guards the math.
func TestQueryRangeCellBoundaries(t *testing.T) {
	// 100x100 area, 10-unit cells: boundaries at every multiple of 10.
	cases := []struct {
		name   string
		nodes  []geom.Point
		center geom.Point
		radius float64
	}{
		{
			name:   "node exactly on vertical cell edge",
			nodes:  []geom.Point{{X: 10, Y: 5}, {X: 9.999, Y: 5}, {X: 10.001, Y: 5}},
			center: geom.Point{X: 12, Y: 5},
			radius: 2.5,
		},
		{
			name:   "node exactly on horizontal cell edge",
			nodes:  []geom.Point{{X: 5, Y: 20}, {X: 5, Y: 19.999}},
			center: geom.Point{X: 5, Y: 21},
			radius: 1.5,
		},
		{
			name:   "node on corner shared by four cells",
			nodes:  []geom.Point{{X: 10, Y: 10}},
			center: geom.Point{X: 9, Y: 9},
			radius: 1.5,
		},
		{
			name:   "query centered on a corner",
			nodes:  []geom.Point{{X: 9, Y: 9}, {X: 11, Y: 9}, {X: 9, Y: 11}, {X: 11, Y: 11}},
			center: geom.Point{X: 10, Y: 10},
			radius: math.Sqrt2,
		},
		{
			name:   "radius exactly reaching a node across a boundary",
			nodes:  []geom.Point{{X: 20, Y: 50}, {X: 20.0001, Y: 50}},
			center: geom.Point{X: 15, Y: 50},
			radius: 5,
		},
		{
			name:   "node on the area's max corner lands in the last cell",
			nodes:  []geom.Point{{X: 100, Y: 100}, {X: 99, Y: 99}},
			center: geom.Point{X: 100, Y: 100},
			radius: 2,
		},
		{
			name:   "node on the area's min corner",
			nodes:  []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}},
			center: geom.Point{X: 0, Y: 0},
			radius: 1,
		},
		{
			name:   "query disc clipped by the area edge",
			nodes:  []geom.Point{{X: 2, Y: 50}, {X: 7, Y: 50}},
			center: geom.Point{X: 0, Y: 50},
			radius: 6,
		},
		{
			name:   "zero radius hits only exact co-location",
			nodes:  []geom.Point{{X: 40, Y: 40}, {X: 40.0000001, Y: 40}},
			center: geom.Point{X: 40, Y: 40},
			radius: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := mustGrid(t, geom.Square(100), 10)
			for i, p := range tc.nodes {
				g.Update(int32(i), p)
			}
			got := g.QueryRange(tc.center, tc.radius, -1, nil)
			sortIDs(got)
			want := bruteForce(g, tc.center, tc.radius, -1)
			if !equalIDs(got, want) {
				t.Errorf("QueryRange = %v, brute force = %v", got, want)
			}
		})
	}
}

// TestQueryRangeRadiusExceedsArea: a disc larger than the whole area must
// return every node no matter where the center sits — including centers
// outside the area, where the naive cell-window arithmetic goes negative
// and must clamp instead of slicing out of bounds.
func TestQueryRangeRadiusExceedsArea(t *testing.T) {
	g := mustGrid(t, geom.Square(100), 10)
	for i := 0; i < 25; i++ {
		g.Update(int32(i), geom.Point{X: float64(i%5) * 25, Y: float64(i/5) * 25})
	}
	centers := []geom.Point{
		{X: 50, Y: 50},
		{X: 0, Y: 0},
		{X: 100, Y: 100},
		{X: -300, Y: -300}, // far outside, min corner side
		{X: 400, Y: 50},    // far outside, one axis only
	}
	for _, c := range centers {
		radius := 1000.0 // covers the whole area from any of these centers
		got := g.QueryRange(c, radius, -1, nil)
		if len(got) != g.Len() {
			t.Errorf("center %v: %d of %d nodes returned", c, len(got), g.Len())
		}
	}
	// Infinite radius must behave the same, not overflow the cell window.
	got := g.QueryRange(geom.Point{X: 50, Y: 50}, math.Inf(1), -1, nil)
	if len(got) != g.Len() {
		t.Errorf("infinite radius: %d of %d nodes returned", len(got), g.Len())
	}
}

// TestQueryRangeDstReuse pins the append contract: QueryRange extends dst,
// never touches the prefix, and tolerates the caller recycling the returned
// slice — the allocation-free pattern the channel hot path relies on.
func TestQueryRangeDstReuse(t *testing.T) {
	g := mustGrid(t, geom.Square(100), 10)
	g.Update(1, geom.Point{X: 10, Y: 10})
	g.Update(2, geom.Point{X: 12, Y: 10})
	g.Update(3, geom.Point{X: 90, Y: 90})

	t.Run("prefix preserved", func(t *testing.T) {
		dst := []int32{-7, -8}
		got := g.QueryRange(geom.Point{X: 11, Y: 10}, 3, -1, dst)
		if len(got) != 4 || got[0] != -7 || got[1] != -8 {
			t.Fatalf("prefix clobbered: %v", got)
		}
		tail := append([]int32(nil), got[2:]...)
		sortIDs(tail)
		if tail[0] != 1 || tail[1] != 2 {
			t.Errorf("appended ids = %v, want [1 2]", tail)
		}
	})

	t.Run("recycled buffer leaves no stale entries", func(t *testing.T) {
		buf := g.QueryRange(geom.Point{X: 11, Y: 10}, 3, -1, nil)
		if len(buf) != 2 {
			t.Fatalf("first query = %v", buf)
		}
		// Second query into the same backing array finds one node; the
		// result must be exactly that node even though the buffer still
		// holds the previous ids beyond len.
		buf = g.QueryRange(geom.Point{X: 90, Y: 90}, 1, -1, buf[:0])
		if len(buf) != 1 || buf[0] != 3 {
			t.Errorf("recycled query = %v, want [3]", buf)
		}
	})

	t.Run("nil dst allocates", func(t *testing.T) {
		if got := g.QueryRange(geom.Point{X: 90, Y: 90}, 1, -1, nil); len(got) != 1 {
			t.Errorf("nil dst = %v", got)
		}
	})

	t.Run("empty result returns dst unchanged", func(t *testing.T) {
		dst := []int32{42}
		got := g.QueryRange(geom.Point{X: 50, Y: 50}, 0.5, -1, dst)
		if len(got) != 1 || got[0] != 42 {
			t.Errorf("empty-result query changed dst: %v", got)
		}
	})
}

// TestQueryRangeDifferentialRandomized sweeps random point sets — with a
// fraction deliberately outside the area so the clamped boundary cells hold
// extra load — across radii from zero to area-covering, always against the
// brute-force oracle.
func TestQueryRangeDifferentialRandomized(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	for trial := 0; trial < 25; trial++ {
		g := mustGrid(t, geom.Square(200), 23) // cell size not dividing the side
		n := 10 + rng.IntN(80)
		for i := 0; i < n; i++ {
			p := geom.Point{X: rng.Float64()*200 - 0, Y: rng.Float64() * 200}
			if rng.IntN(10) == 0 { // 10% outside the area
				p.X += 250
			}
			g.Update(int32(i), p)
		}
		for _, radius := range []float64{0, 5, 23, 46, 300} {
			center := geom.Point{X: rng.Float64() * 250, Y: rng.Float64() * 250}
			exclude := int32(rng.IntN(n))
			got := g.QueryRange(center, radius, exclude, nil)
			sortIDs(got)
			want := bruteForce(g, center, radius, exclude)
			if !equalIDs(got, want) {
				t.Fatalf("trial %d radius %g center %v: grid %v, brute force %v",
					trial, radius, center, got, want)
			}
		}
	}
}

func equalIDs(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
