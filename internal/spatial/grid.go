// Package spatial provides a uniform-grid spatial index over node positions.
// The wireless channel uses it to find all receivers within a transmission
// range without scanning every node, which keeps broadcast delivery O(local
// density) instead of O(N) and lets the scalability benchmarks run scenarios
// far larger than the paper's 50 nodes.
package spatial

import (
	"fmt"
	"math"

	"mobic/internal/geom"
)

// Grid is a uniform bucket grid over a rectangular area. Cell size should be
// on the order of the query radius; QueryRange then touches at most the 3x3
// (or slightly larger) block of cells around the query point.
//
// Grid tolerates points outside its nominal area by clamping them to the
// boundary cells, so mobility models that momentarily overshoot an edge do
// not lose nodes.
type Grid struct {
	area     geom.Rect
	cellSize float64
	cols     int
	rows     int
	cells    [][]int32 // cell -> node ids
	pos      map[int32]geom.Point
	cellOf   map[int32]int
}

// NewGrid builds an empty grid over area with the given cell size. It returns
// an error for an invalid area or non-positive cell size.
func NewGrid(area geom.Rect, cellSize float64) (*Grid, error) {
	if !area.Valid() {
		return nil, fmt.Errorf("spatial: invalid area %v", area)
	}
	if cellSize <= 0 || math.IsNaN(cellSize) {
		return nil, fmt.Errorf("spatial: invalid cell size %g", cellSize)
	}
	cols := int(math.Ceil(area.Width() / cellSize))
	rows := int(math.Ceil(area.Height() / cellSize))
	if cols < 1 {
		cols = 1
	}
	if rows < 1 {
		rows = 1
	}
	return &Grid{
		area:     area,
		cellSize: cellSize,
		cols:     cols,
		rows:     rows,
		cells:    make([][]int32, cols*rows),
		pos:      make(map[int32]geom.Point),
		cellOf:   make(map[int32]int),
	}, nil
}

// Len returns the number of indexed nodes.
func (g *Grid) Len() int { return len(g.pos) }

// CellSize returns the configured cell size.
func (g *Grid) CellSize() float64 { return g.cellSize }

func (g *Grid) cellIndex(p geom.Point) int {
	c := g.area.Clamp(p)
	col := int((c.X - g.area.MinX) / g.cellSize)
	row := int((c.Y - g.area.MinY) / g.cellSize)
	if col >= g.cols {
		col = g.cols - 1
	}
	if row >= g.rows {
		row = g.rows - 1
	}
	return row*g.cols + col
}

// Update inserts node id at p, or moves it there if already present.
func (g *Grid) Update(id int32, p geom.Point) {
	newCell := g.cellIndex(p)
	if old, ok := g.cellOf[id]; ok {
		if old == newCell {
			g.pos[id] = p
			return
		}
		g.removeFromCell(id, old)
	}
	g.cells[newCell] = append(g.cells[newCell], id)
	g.cellOf[id] = newCell
	g.pos[id] = p
}

// Remove deletes node id from the index. Removing an absent id is a no-op.
func (g *Grid) Remove(id int32) {
	cell, ok := g.cellOf[id]
	if !ok {
		return
	}
	g.removeFromCell(id, cell)
	delete(g.cellOf, id)
	delete(g.pos, id)
}

func (g *Grid) removeFromCell(id int32, cell int) {
	bucket := g.cells[cell]
	for i, v := range bucket {
		if v == id {
			bucket[i] = bucket[len(bucket)-1]
			g.cells[cell] = bucket[:len(bucket)-1]
			return
		}
	}
}

// Position returns the indexed position of id.
func (g *Grid) Position(id int32) (geom.Point, bool) {
	p, ok := g.pos[id]
	return p, ok
}

// QueryRange appends to dst the ids of all nodes within radius of center
// (boundary inclusive), excluding `exclude` (pass a negative id to exclude
// nothing), and returns the extended slice. A negative or NaN radius yields
// nothing; an infinite radius yields every node. Result order follows bucket
// insertion order, NOT ascending ids — callers needing a canonical order
// must sort.
func (g *Grid) QueryRange(center geom.Point, radius float64, exclude int32, dst []int32) []int32 {
	if radius < 0 || math.IsNaN(radius) {
		return dst
	}
	rSq := radius * radius
	minCol, maxCol := 0, g.cols-1
	minRow, maxRow := 0, g.rows-1
	if !math.IsInf(radius, 1) {
		// Conversion of an out-of-range float (e.g. ±Inf) to int is
		// implementation-defined, so the window arithmetic runs only for
		// finite radii; an infinite radius scans every cell.
		minCol = clampInt(int(math.Floor((center.X-radius-g.area.MinX)/g.cellSize)), 0, g.cols-1)
		maxCol = clampInt(int(math.Floor((center.X+radius-g.area.MinX)/g.cellSize)), 0, g.cols-1)
		minRow = clampInt(int(math.Floor((center.Y-radius-g.area.MinY)/g.cellSize)), 0, g.rows-1)
		maxRow = clampInt(int(math.Floor((center.Y+radius-g.area.MinY)/g.cellSize)), 0, g.rows-1)
	}
	for row := minRow; row <= maxRow; row++ {
		for col := minCol; col <= maxCol; col++ {
			for _, id := range g.cells[row*g.cols+col] {
				if id == exclude {
					continue
				}
				if g.pos[id].DistSq(center) <= rSq {
					dst = append(dst, id)
				}
			}
		}
	}
	return dst
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
