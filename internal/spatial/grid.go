// Package spatial provides a uniform-grid spatial index over node positions.
// The wireless channel uses it to find all receivers within a transmission
// range without scanning every node, which keeps broadcast delivery O(local
// density) instead of O(N) and lets the scalability benchmarks run scenarios
// far larger than the paper's 50 nodes.
package spatial

import (
	"fmt"
	"math"

	"mobic/internal/geom"
)

// maxDenseID bounds the node ids stored in the dense (slice-backed) tables.
// Simulator node ids are 0..N-1, so everything real lands here; ids beyond
// the bound (or negative) fall back to map-backed sparse storage so the
// index stays correct for arbitrary callers without ever allocating a
// multi-gigabyte slice for one stray id.
const maxDenseID = 1 << 21

// noCell marks an id as absent from the dense tables.
const noCell = int32(-1)

// Grid is a uniform bucket grid over a rectangular area. Cell size should be
// on the order of the query radius; QueryRange then touches at most the 3x3
// (or slightly larger) block of cells around the query point.
//
// Positions and cell assignments for the common case — ids 0..N-1, which is
// what every simulator caller uses — live in dense slices indexed by id, so
// the per-candidate distance check in QueryRange is two array loads instead
// of a map lookup. Out-of-range ids are handled by a sparse map fallback.
//
// Grid tolerates points outside its nominal area by clamping them to the
// boundary cells, so mobility models that momentarily overshoot an edge do
// not lose nodes.
type Grid struct {
	area     geom.Rect
	cellSize float64
	cols     int
	rows     int
	cells    [][]int32 // cell -> node ids
	// Dense storage for ids in [0, len(pos)): pos[id] is the position,
	// cellOf[id] the cell index or noCell when absent.
	pos    []geom.Point
	cellOf []int32
	count  int
	// Sparse fallback for ids outside the dense range; nil until needed.
	sparsePos  map[int32]geom.Point
	sparseCell map[int32]int32
}

// NewGrid builds an empty grid over area with the given cell size. It returns
// an error for an invalid area or non-positive cell size.
func NewGrid(area geom.Rect, cellSize float64) (*Grid, error) {
	if !area.Valid() {
		return nil, fmt.Errorf("spatial: invalid area %v", area)
	}
	if cellSize <= 0 || math.IsNaN(cellSize) {
		return nil, fmt.Errorf("spatial: invalid cell size %g", cellSize)
	}
	cols := int(math.Ceil(area.Width() / cellSize))
	rows := int(math.Ceil(area.Height() / cellSize))
	if cols < 1 {
		cols = 1
	}
	if rows < 1 {
		rows = 1
	}
	return &Grid{
		area:     area,
		cellSize: cellSize,
		cols:     cols,
		rows:     rows,
		cells:    make([][]int32, cols*rows),
	}, nil
}

// Reserve pre-sizes the dense tables for ids 0..n-1, so the first Update of
// each node does not have to grow them incrementally.
func (g *Grid) Reserve(n int) {
	if n <= len(g.pos) || n > maxDenseID {
		return
	}
	g.growDense(int32(n - 1))
}

// growDense extends the dense tables to cover id, marking new slots absent.
func (g *Grid) growDense(id int32) {
	old := len(g.pos)
	n := int(id) + 1
	if cap(g.pos) < n {
		pos := make([]geom.Point, n)
		copy(pos, g.pos)
		g.pos = pos
		cellOf := make([]int32, n)
		copy(cellOf, g.cellOf)
		g.cellOf = cellOf
	} else {
		g.pos = g.pos[:n]
		g.cellOf = g.cellOf[:n]
	}
	for i := old; i < n; i++ {
		g.cellOf[i] = noCell
	}
}

// dense reports whether id belongs to the dense tables.
func (g *Grid) dense(id int32) bool {
	return id >= 0 && id < maxDenseID
}

// Len returns the number of indexed nodes.
func (g *Grid) Len() int { return g.count }

// CellSize returns the configured cell size.
func (g *Grid) CellSize() float64 { return g.cellSize }

func (g *Grid) cellIndex(p geom.Point) int32 {
	c := g.area.Clamp(p)
	col := int((c.X - g.area.MinX) / g.cellSize)
	row := int((c.Y - g.area.MinY) / g.cellSize)
	if col >= g.cols {
		col = g.cols - 1
	}
	if row >= g.rows {
		row = g.rows - 1
	}
	return int32(row*g.cols + col)
}

// Update inserts node id at p, or moves it there if already present.
func (g *Grid) Update(id int32, p geom.Point) {
	newCell := g.cellIndex(p)
	if !g.dense(id) {
		g.updateSparse(id, p, newCell)
		return
	}
	if int(id) >= len(g.pos) {
		g.growDense(id)
	}
	old := g.cellOf[id]
	if old == newCell {
		g.pos[id] = p
		return
	}
	if old != noCell {
		g.removeFromCell(id, old)
	} else {
		g.count++
	}
	g.cells[newCell] = append(g.cells[newCell], id)
	g.cellOf[id] = newCell
	g.pos[id] = p
}

// updateSparse is the map-backed slow path for out-of-range ids.
func (g *Grid) updateSparse(id int32, p geom.Point, newCell int32) {
	if g.sparsePos == nil {
		g.sparsePos = make(map[int32]geom.Point)
		g.sparseCell = make(map[int32]int32)
	}
	if old, ok := g.sparseCell[id]; ok {
		if old == newCell {
			g.sparsePos[id] = p
			return
		}
		g.removeFromCell(id, old)
	} else {
		g.count++
	}
	g.cells[newCell] = append(g.cells[newCell], id)
	g.sparseCell[id] = newCell
	g.sparsePos[id] = p
}

// Remove deletes node id from the index. Removing an absent id is a no-op.
func (g *Grid) Remove(id int32) {
	if g.dense(id) {
		if int(id) >= len(g.pos) || g.cellOf[id] == noCell {
			return
		}
		g.removeFromCell(id, g.cellOf[id])
		g.cellOf[id] = noCell
		g.pos[id] = geom.Point{}
		g.count--
		return
	}
	cell, ok := g.sparseCell[id]
	if !ok {
		return
	}
	g.removeFromCell(id, cell)
	delete(g.sparseCell, id)
	delete(g.sparsePos, id)
	g.count--
}

func (g *Grid) removeFromCell(id int32, cell int32) {
	bucket := g.cells[cell]
	for i, v := range bucket {
		if v == id {
			bucket[i] = bucket[len(bucket)-1]
			g.cells[cell] = bucket[:len(bucket)-1]
			return
		}
	}
}

// Position returns the indexed position of id.
func (g *Grid) Position(id int32) (geom.Point, bool) {
	if g.dense(id) {
		if int(id) >= len(g.pos) || g.cellOf[id] == noCell {
			return geom.Point{}, false
		}
		return g.pos[id], true
	}
	p, ok := g.sparsePos[id]
	return p, ok
}

// ForEach calls f for every indexed node. Iteration order is unspecified.
func (g *Grid) ForEach(f func(id int32, p geom.Point)) {
	for id, cell := range g.cellOf {
		if cell != noCell {
			f(int32(id), g.pos[id])
		}
	}
	for id, p := range g.sparsePos {
		f(id, p)
	}
}

// QueryRange appends to dst the ids of all nodes within radius of center
// (boundary inclusive), excluding `exclude` (pass a negative id to exclude
// nothing), and returns the extended slice. A negative or NaN radius yields
// nothing; an infinite radius yields every node. Result order follows bucket
// insertion order, NOT ascending ids — callers needing a canonical order
// must sort.
func (g *Grid) QueryRange(center geom.Point, radius float64, exclude int32, dst []int32) []int32 {
	if radius < 0 || math.IsNaN(radius) {
		return dst
	}
	rSq := radius * radius
	minCol, maxCol := 0, g.cols-1
	minRow, maxRow := 0, g.rows-1
	if !math.IsInf(radius, 1) {
		// Conversion of an out-of-range float (e.g. ±Inf) to int is
		// implementation-defined, so the window arithmetic runs only for
		// finite radii; an infinite radius scans every cell.
		minCol = clampInt(int(math.Floor((center.X-radius-g.area.MinX)/g.cellSize)), 0, g.cols-1)
		maxCol = clampInt(int(math.Floor((center.X+radius-g.area.MinX)/g.cellSize)), 0, g.cols-1)
		minRow = clampInt(int(math.Floor((center.Y-radius-g.area.MinY)/g.cellSize)), 0, g.rows-1)
		maxRow = clampInt(int(math.Floor((center.Y+radius-g.area.MinY)/g.cellSize)), 0, g.rows-1)
	}
	pos := g.pos
	for row := minRow; row <= maxRow; row++ {
		base := row * g.cols
		for col := minCol; col <= maxCol; col++ {
			for _, id := range g.cells[base+col] {
				if id == exclude {
					continue
				}
				var p geom.Point
				if uint(id) < uint(len(pos)) {
					p = pos[id]
				} else {
					p = g.sparsePos[id]
				}
				if p.DistSq(center) <= rSq {
					dst = append(dst, id)
				}
			}
		}
	}
	return dst
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
