package spatial

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"

	"mobic/internal/geom"
)

func mustGrid(t *testing.T, area geom.Rect, cell float64) *Grid {
	t.Helper()
	g, err := NewGrid(area, cell)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewGridValidation(t *testing.T) {
	if _, err := NewGrid(geom.Rect{}, 10); err == nil {
		t.Error("invalid area should error")
	}
	if _, err := NewGrid(geom.Square(100), 0); err == nil {
		t.Error("zero cell size should error")
	}
	if _, err := NewGrid(geom.Square(100), -5); err == nil {
		t.Error("negative cell size should error")
	}
}

func TestUpdateAndQuery(t *testing.T) {
	g := mustGrid(t, geom.Square(100), 10)
	g.Update(1, geom.Point{X: 10, Y: 10})
	g.Update(2, geom.Point{X: 15, Y: 10})
	g.Update(3, geom.Point{X: 90, Y: 90})

	got := g.QueryRange(geom.Point{X: 10, Y: 10}, 6, -1, nil)
	sortIDs(got)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("QueryRange = %v, want [1 2]", got)
	}
}

func TestQueryExcludesSelf(t *testing.T) {
	g := mustGrid(t, geom.Square(100), 10)
	g.Update(1, geom.Point{X: 50, Y: 50})
	g.Update(2, geom.Point{X: 51, Y: 50})
	got := g.QueryRange(geom.Point{X: 50, Y: 50}, 5, 1, nil)
	if len(got) != 1 || got[0] != 2 {
		t.Errorf("QueryRange excluding 1 = %v, want [2]", got)
	}
}

func TestBoundaryInclusive(t *testing.T) {
	g := mustGrid(t, geom.Square(100), 25)
	g.Update(1, geom.Point{X: 0, Y: 0})
	g.Update(2, geom.Point{X: 30, Y: 0})
	got := g.QueryRange(geom.Point{X: 0, Y: 0}, 30, 1, nil)
	if len(got) != 1 {
		t.Errorf("node exactly at radius should be included, got %v", got)
	}
}

func TestMoveBetweenCells(t *testing.T) {
	g := mustGrid(t, geom.Square(100), 10)
	g.Update(1, geom.Point{X: 5, Y: 5})
	g.Update(1, geom.Point{X: 95, Y: 95})
	if got := g.QueryRange(geom.Point{X: 5, Y: 5}, 8, -1, nil); len(got) != 0 {
		t.Errorf("old cell still returns node: %v", got)
	}
	if got := g.QueryRange(geom.Point{X: 95, Y: 95}, 8, -1, nil); len(got) != 1 {
		t.Errorf("new cell missing node: %v", got)
	}
	if g.Len() != 1 {
		t.Errorf("Len = %d, want 1 after in-place move", g.Len())
	}
}

func TestMoveWithinCell(t *testing.T) {
	g := mustGrid(t, geom.Square(100), 50)
	g.Update(1, geom.Point{X: 10, Y: 10})
	g.Update(1, geom.Point{X: 12, Y: 10})
	p, ok := g.Position(1)
	if !ok || p != (geom.Point{X: 12, Y: 10}) {
		t.Errorf("Position = %v, %v", p, ok)
	}
}

func TestRemove(t *testing.T) {
	g := mustGrid(t, geom.Square(100), 10)
	g.Update(1, geom.Point{X: 50, Y: 50})
	g.Remove(1)
	if g.Len() != 0 {
		t.Errorf("Len after remove = %d", g.Len())
	}
	if _, ok := g.Position(1); ok {
		t.Error("Position should miss after remove")
	}
	g.Remove(1) // no-op
	if got := g.QueryRange(geom.Point{X: 50, Y: 50}, 10, -1, nil); len(got) != 0 {
		t.Errorf("removed node still queryable: %v", got)
	}
}

func TestOutOfAreaPointsClampToEdgeCells(t *testing.T) {
	g := mustGrid(t, geom.Square(100), 10)
	g.Update(1, geom.Point{X: -5, Y: 200}) // outside area
	got := g.QueryRange(geom.Point{X: -5, Y: 200}, 1, -1, nil)
	if len(got) != 1 {
		t.Errorf("out-of-area node should still be findable, got %v", got)
	}
}

func TestNegativeRadius(t *testing.T) {
	g := mustGrid(t, geom.Square(100), 10)
	g.Update(1, geom.Point{X: 50, Y: 50})
	if got := g.QueryRange(geom.Point{X: 50, Y: 50}, -1, -1, nil); len(got) != 0 {
		t.Errorf("negative radius should return nothing, got %v", got)
	}
}

func TestCellSizeAccessor(t *testing.T) {
	g := mustGrid(t, geom.Square(100), 12.5)
	if g.CellSize() != 12.5 {
		t.Errorf("CellSize = %v", g.CellSize())
	}
}

// Property: grid query returns exactly the brute-force neighbor set.
func TestGridMatchesBruteForceProperty(t *testing.T) {
	check := func(seed uint64, radiusSeed uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 99))
		area := geom.Square(670)
		g, err := NewGrid(area, 67)
		if err != nil {
			return false
		}
		const n = 60
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Point{X: rng.Float64() * 670, Y: rng.Float64() * 670}
			g.Update(int32(i), pts[i])
		}
		radius := 10 + float64(radiusSeed)
		center := pts[0]

		got := g.QueryRange(center, radius, 0, nil)
		sortIDs(got)

		var want []int32
		for i := 1; i < n; i++ {
			if pts[i].Dist(center) <= radius {
				want = append(want, int32(i))
			}
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func sortIDs(ids []int32) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

func BenchmarkQueryRange(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 2))
	g, err := NewGrid(geom.Square(670), 67)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		g.Update(int32(i), geom.Point{X: rng.Float64() * 670, Y: rng.Float64() * 670})
	}
	buf := make([]int32, 0, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = g.QueryRange(geom.Point{X: 335, Y: 335}, 250, -1, buf[:0])
	}
}

// BenchmarkQueryRangeDense measures the per-candidate cost of QueryRange on
// a dense neighborhood with a reused destination buffer — the exact shape of
// the broadcast hot path, where every candidate costs one position lookup
// plus one distance test. The allocs/op gate (BENCH_engine.json) pins this
// at zero.
func BenchmarkQueryRangeDense(b *testing.B) {
	rng := rand.New(rand.NewPCG(3, 4))
	g, err := NewGrid(geom.Square(670), 250)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		g.Update(int32(i), geom.Point{X: rng.Float64() * 670, Y: rng.Float64() * 670})
	}
	buf := make([]int32, 0, 256)
	centers := [4]geom.Point{
		{X: 100, Y: 100}, {X: 335, Y: 335}, {X: 600, Y: 200}, {X: 50, Y: 650},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = g.QueryRange(centers[i%4], 250, int32(i%200), buf[:0])
	}
	if len(buf) == 0 {
		b.Fatal("empty query")
	}
}
