package spatial

import (
	"math"
	"math/rand/v2"
	"slices"
	"testing"

	"mobic/internal/geom"
)

func TestSplitTilesMatchesAspect(t *testing.T) {
	cases := []struct {
		k, cols, rows, wantX, wantY int
	}{
		{1, 10, 10, 1, 1},
		{2, 10, 5, 2, 1},
		{2, 5, 10, 1, 2},
		{4, 10, 10, 2, 2},
		{6, 12, 4, 3, 2},
		{8, 2, 16, 2, 4},
		{7, 10, 10, 7, 1},
		{16, 2, 2, 2, 2}, // clamped: grid too small for 16 tiles
	}
	for _, c := range cases {
		kx, ky := splitTiles(c.k, c.cols, c.rows)
		if kx != c.wantX || ky != c.wantY {
			t.Errorf("splitTiles(%d, %d, %d) = (%d, %d), want (%d, %d)",
				c.k, c.cols, c.rows, kx, ky, c.wantX, c.wantY)
		}
	}
}

func TestTilingPartitionsEveryCell(t *testing.T) {
	for _, offset := range []int{0, 1, 3, 17} {
		tl, err := NewTiling(geom.Square(670), 100, 4, offset)
		if err != nil {
			t.Fatal(err)
		}
		k := tl.Tiles()
		if k != 4 {
			t.Fatalf("offset %d: got %d tiles, want 4", offset, k)
		}
		perTile := make([]int, k)
		for row := 0; row < tl.Rows(); row++ {
			for col := 0; col < tl.Cols(); col++ {
				tile := tl.TileOfCell(col, row)
				if tile < 0 || tile >= k {
					t.Fatalf("offset %d: cell (%d,%d) mapped to tile %d of %d", offset, col, row, tile, k)
				}
				perTile[tile]++
			}
		}
		for tile, n := range perTile {
			if n == 0 {
				t.Errorf("offset %d: tile %d owns no cells", offset, tile)
			}
		}
	}
}

func TestTileOfAgreesWithCellAssignment(t *testing.T) {
	tl, err := NewTiling(geom.NewRect(1000, 400), 150, 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(7, 7))
	for i := 0; i < 500; i++ {
		// Include points outside the area: they must clamp, not panic.
		p := geom.Point{X: rng.Float64()*1200 - 100, Y: rng.Float64()*600 - 100}
		c := geom.Rect{MaxX: 1000, MaxY: 400}.Clamp(p)
		col := int(c.X / 150)
		row := int(c.Y / 150)
		if col >= tl.Cols() {
			col = tl.Cols() - 1
		}
		if row >= tl.Rows() {
			row = tl.Rows() - 1
		}
		if got, want := tl.TileOf(p), tl.TileOfCell(col, row); got != want {
			t.Fatalf("TileOf(%v) = %d, cell (%d,%d) says %d", p, got, col, row, want)
		}
	}
}

func TestHaloSymmetricIrreflexive(t *testing.T) {
	tl, err := NewTiling(geom.Square(2000), 250, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	halo := tl.Halo(300)
	for a, hs := range halo {
		for _, b := range hs {
			if int(b) == a {
				t.Errorf("tile %d lists itself as halo neighbor", a)
			}
			if !slices.Contains(halo[b], int32(a)) {
				t.Errorf("halo asymmetric: %d -> %d but not %d -> %d", a, b, b, a)
			}
		}
	}
	if got := tl.HaloPairs(300); got == 0 {
		t.Error("multi-tile tiling reports zero halo pairs")
	}
	// The cache must serve the same radius again.
	if &tl.Halo(300)[0] == nil {
		t.Fatal("unreachable")
	}
}

func TestNewTilingRejectsBadInputs(t *testing.T) {
	if _, err := NewTiling(geom.Rect{}, 100, 4, 0); err == nil {
		t.Error("invalid area accepted")
	}
	if _, err := NewTiling(geom.Square(100), 0, 4, 0); err == nil {
		t.Error("zero cell size accepted")
	}
	if _, err := NewTiling(geom.Square(100), 50, 0, 0); err == nil {
		t.Error("zero tiles accepted")
	}
	if _, err := NewTiling(geom.Square(100), 50, 4, -1); err == nil {
		t.Error("negative offset accepted")
	}
	if _, err := NewSnapshot(geom.Rect{}, 100); err == nil {
		t.Error("snapshot: invalid area accepted")
	}
	if _, err := NewSnapshot(geom.Square(100), math.NaN()); err == nil {
		t.Error("snapshot: NaN cell size accepted")
	}
}

// TestSnapshotMatchesGrid is the differential oracle at the index level: a
// Snapshot filled with the same positions as a Grid must answer every range
// query with the same id set.
func TestSnapshotMatchesGrid(t *testing.T) {
	area := geom.Square(670)
	grid, err := NewGrid(area, 250)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := NewSnapshot(area, 250)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(3, 9))
	pos := make([]geom.Point, 120)
	for id := range pos {
		pos[id] = geom.Point{X: rng.Float64() * 670, Y: rng.Float64() * 670}
		grid.Update(int32(id), pos[id])
	}
	snap.Fill(pos)
	if snap.Len() != len(pos) {
		t.Fatalf("snapshot holds %d nodes, want %d", snap.Len(), len(pos))
	}
	for i := 0; i < 200; i++ {
		center := geom.Point{X: rng.Float64() * 670, Y: rng.Float64() * 670}
		radius := rng.Float64() * 400
		exclude := int32(rng.IntN(len(pos)))
		g := grid.QueryRange(center, radius, exclude, nil)
		s := snap.QueryRange(center, radius, exclude, nil)
		slices.Sort(g)
		slices.Sort(s)
		if !slices.Equal(g, s) {
			t.Fatalf("query %v r=%g: grid %v, snapshot %v", center, radius, g, s)
		}
	}
	// Infinite radius returns everyone but the excluded id.
	all := snap.QueryRange(geom.Point{}, math.Inf(1), 5, nil)
	if len(all) != len(pos)-1 {
		t.Fatalf("infinite radius returned %d of %d ids", len(all), len(pos)-1)
	}
	// Negative and NaN radii return nothing.
	if got := snap.QueryRange(geom.Point{}, -1, -1, nil); len(got) != 0 {
		t.Fatalf("negative radius returned %d ids", len(got))
	}
	if got := snap.QueryRange(geom.Point{}, math.NaN(), -1, nil); len(got) != 0 {
		t.Fatalf("NaN radius returned %d ids", len(got))
	}
}

func TestSnapshotCellsSortedAndComplete(t *testing.T) {
	snap, err := NewSnapshot(geom.Square(500), 100)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(11, 2))
	pos := make([]geom.Point, 300)
	for id := range pos {
		pos[id] = geom.Point{X: rng.Float64() * 500, Y: rng.Float64() * 500}
	}
	snap.Fill(pos)
	seen := make(map[int32]int)
	for row := 0; row < snap.rows; row++ {
		for col := 0; col < snap.cols; col++ {
			cell := snap.Cell(col, row)
			if !slices.IsSorted(cell) {
				t.Fatalf("cell (%d,%d) ids not ascending: %v", col, row, cell)
			}
			for _, id := range cell {
				seen[id]++
				if got := snap.Position(id); got != pos[id] {
					t.Fatalf("node %d position %v, want %v", id, got, pos[id])
				}
			}
		}
	}
	if len(seen) != len(pos) {
		t.Fatalf("cells cover %d of %d nodes", len(seen), len(pos))
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("node %d appears in %d cells", id, n)
		}
	}
}

// TestSnapshotRefillAllocs pins the per-window cost of the tiled engine's
// snapshot rebuild: after the first Fill sized the arrays, refilling (even
// with moved positions) allocates nothing.
func TestSnapshotRefillAllocs(t *testing.T) {
	snap, err := NewSnapshot(geom.Square(670), 100)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(5, 5))
	pos := make([]geom.Point, 200)
	for id := range pos {
		pos[id] = geom.Point{X: rng.Float64() * 670, Y: rng.Float64() * 670}
	}
	snap.Fill(pos)
	allocs := testing.AllocsPerRun(50, func() {
		for id := range pos {
			pos[id].X += 1.5
		}
		snap.Fill(pos)
	})
	if allocs > 0 {
		t.Errorf("snapshot refill allocates %.1f objects, want 0", allocs)
	}
}

// FuzzTilePartition fuzzes arena geometry x tile count x node placement and
// checks the invariants the tiled engine's correctness argument rests on:
// every node lands in exactly one tile, halo sets are symmetric and
// irreflexive, and a snapshot range query loses and duplicates nothing
// against the brute-force oracle (the spatial-level form of "no lost or
// duplicated deliveries").
func FuzzTilePartition(f *testing.F) {
	f.Add(670.0, 670.0, 250.0, 4, 0, 50, uint64(1))
	f.Add(1000.0, 1000.0, 150.0, 8, 3, 80, uint64(2))
	f.Add(9475.0, 9475.0, 250.0, 16, 0, 120, uint64(3))
	f.Add(300.0, 40.0, 25.0, 6, 7, 30, uint64(4))
	f.Fuzz(func(t *testing.T, w, h, cellSize float64, tiles, offset, n int, seed uint64) {
		// Sanitize into the domain NewTiling accepts; the invariants must
		// then hold for every input.
		if math.IsNaN(w) || math.IsInf(w, 0) || w <= 0 {
			w = 100
		}
		if math.IsNaN(h) || math.IsInf(h, 0) || h <= 0 {
			h = 100
		}
		w = math.Min(w, 5000)
		h = math.Min(h, 5000)
		if math.IsNaN(cellSize) || math.IsInf(cellSize, 0) || cellSize <= 0 {
			cellSize = 50
		}
		cellSize = math.Max(math.Min(cellSize, math.Max(w, h)), math.Max(w, h)/64)
		tiles = clampInt(tiles, 1, 64)
		offset = clampInt(offset, 0, 1000)
		n = clampInt(n, 0, 200)

		area := geom.NewRect(w, h)
		tl, err := NewTiling(area, cellSize, tiles, offset)
		if err != nil {
			t.Fatalf("NewTiling(%gx%g, %g, %d, %d): %v", w, h, cellSize, tiles, offset, err)
		}
		k := tl.Tiles()
		if k < 1 || k > tiles {
			t.Fatalf("tile count %d outside [1, %d]", k, tiles)
		}

		// Every cell maps into range and no tile is empty.
		perTile := make([]int, k)
		for row := 0; row < tl.Rows(); row++ {
			for col := 0; col < tl.Cols(); col++ {
				tile := tl.TileOfCell(col, row)
				if tile < 0 || tile >= k {
					t.Fatalf("cell (%d,%d) -> tile %d of %d", col, row, tile, k)
				}
				perTile[tile]++
			}
		}
		for tile, cells := range perTile {
			if cells == 0 {
				t.Fatalf("tile %d owns no cells (grid %dx%d, k %d, offset %d)",
					tile, tl.Cols(), tl.Rows(), k, offset)
			}
		}

		// Halo symmetry and irreflexivity at the engine's query radius.
		radius := cellSize * 1.5
		halo := tl.Halo(radius)
		for a, hs := range halo {
			for _, b := range hs {
				if int(b) == a {
					t.Fatalf("tile %d in its own halo", a)
				}
				if !slices.Contains(halo[b], int32(a)) {
					t.Fatalf("halo asymmetric between %d and %d", a, b)
				}
			}
		}

		// Node placement: every node in exactly one tile (TileOf is total
		// and single-valued by construction; check range), and snapshot
		// queries match brute force with no loss or duplication.
		rng := rand.New(rand.NewPCG(seed, 0xd1ce))
		pos := make([]geom.Point, n)
		for id := range pos {
			// Sprinkle some out-of-area positions; they must clamp.
			pos[id] = geom.Point{X: rng.Float64()*w*1.2 - 0.1*w, Y: rng.Float64()*h*1.2 - 0.1*h}
			if tile := tl.TileOf(pos[id]); tile < 0 || tile >= k {
				t.Fatalf("node %d at %v -> tile %d of %d", id, pos[id], tile, k)
			}
		}
		snap, err := NewSnapshot(area, cellSize)
		if err != nil {
			t.Fatal(err)
		}
		snap.Fill(pos)
		for q := 0; q < 4; q++ {
			center := geom.Point{X: rng.Float64() * w, Y: rng.Float64() * h}
			got := snap.QueryRange(center, radius, -1, nil)
			slices.Sort(got)
			var want []int32
			rSq := radius * radius
			for id := range pos {
				if pos[id].DistSq(center) <= rSq {
					want = append(want, int32(id))
				}
			}
			if !slices.Equal(got, want) {
				t.Fatalf("query %v r=%g: snapshot %v, oracle %v", center, radius, got, want)
			}
		}
	})
}
