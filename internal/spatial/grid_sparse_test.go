package spatial

import (
	"sort"
	"testing"

	"mobic/internal/geom"
)

func sparseGrid(t *testing.T) *Grid {
	t.Helper()
	g, err := NewGrid(geom.Square(100), 10)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestSparseIDFallback drives the map-backed slow path with ids outside the
// dense range (negative and >= maxDenseID): insert, in-cell move,
// cross-cell move, query visibility, Position, ForEach and Remove must all
// behave exactly like the dense path.
func TestSparseIDFallback(t *testing.T) {
	g := sparseGrid(t)
	const big = int32(maxDenseID + 7)
	g.Update(-5, geom.Point{X: 10, Y: 10})
	g.Update(big, geom.Point{X: 12, Y: 10})
	g.Update(3, geom.Point{X: 14, Y: 10}) // dense neighbor in the same cell block
	if g.Len() != 3 {
		t.Fatalf("Len = %d, want 3", g.Len())
	}

	// In-cell move then cross-cell move.
	g.Update(big, geom.Point{X: 13, Y: 11})
	g.Update(big, geom.Point{X: 90, Y: 90})
	if g.Len() != 3 {
		t.Fatalf("Len after moves = %d, want 3", g.Len())
	}
	if p, ok := g.Position(big); !ok || p.X != 90 || p.Y != 90 {
		t.Errorf("Position(big) = %v,%v", p, ok)
	}
	if p, ok := g.Position(-5); !ok || p.X != 10 {
		t.Errorf("Position(-5) = %v,%v", p, ok)
	}
	if _, ok := g.Position(int32(maxDenseID + 99)); ok {
		t.Error("absent sparse id reported present")
	}

	got := g.QueryRange(geom.Point{X: 11, Y: 10}, 5, -1000, nil)
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if len(got) != 2 || got[0] != -5 || got[1] != 3 {
		t.Errorf("query near origin = %v, want [-5 3]", got)
	}
	got = g.QueryRange(geom.Point{X: 90, Y: 90}, 5, -1000, nil)
	if len(got) != 1 || got[0] != big {
		t.Errorf("query near far corner = %v, want [%d]", got, big)
	}

	var seen []int32
	g.ForEach(func(id int32, p geom.Point) { seen = append(seen, id) })
	sort.Slice(seen, func(i, j int) bool { return seen[i] < seen[j] })
	if len(seen) != 3 || seen[0] != -5 || seen[1] != 3 || seen[2] != big {
		t.Errorf("ForEach ids = %v", seen)
	}

	g.Remove(big)
	g.Remove(-5)
	g.Remove(-5) // absent sparse id: no-op
	if g.Len() != 1 {
		t.Errorf("Len after sparse removes = %d, want 1", g.Len())
	}
	if _, ok := g.Position(big); ok {
		t.Error("removed sparse id still positioned")
	}
}

func TestRemoveAbsentDense(t *testing.T) {
	g := sparseGrid(t)
	g.Update(0, geom.Point{X: 5, Y: 5})
	g.Remove(9) // beyond the dense tables: no-op
	g.Remove(0)
	g.Remove(0) // present tables, noCell slot: no-op
	if g.Len() != 0 {
		t.Errorf("Len = %d, want 0", g.Len())
	}
	if _, ok := g.Position(9); ok {
		t.Error("never-inserted dense id reported present")
	}
	if _, ok := g.Position(0); ok {
		t.Error("removed dense id reported present")
	}
}

// TestReserve checks pre-sizing: the dense tables grow once, new slots read
// as absent, and undersized or oversized reservations are no-ops.
func TestReserve(t *testing.T) {
	g := sparseGrid(t)
	g.Reserve(50)
	if len(g.pos) != 50 || len(g.cellOf) != 50 {
		t.Fatalf("dense tables sized %d/%d, want 50", len(g.pos), len(g.cellOf))
	}
	for id := int32(0); id < 50; id++ {
		if _, ok := g.Position(id); ok {
			t.Fatalf("reserved slot %d reads as present", id)
		}
	}
	g.Reserve(10) // smaller than current: no-op
	if len(g.pos) != 50 {
		t.Errorf("shrinking Reserve resized tables to %d", len(g.pos))
	}
	g.Reserve(maxDenseID + 1) // absurd: refused rather than allocating GBs
	if len(g.pos) != 50 {
		t.Errorf("out-of-bounds Reserve resized tables to %d", len(g.pos))
	}
	g.Update(49, geom.Point{X: 1, Y: 1})
	if g.Len() != 1 {
		t.Errorf("Len = %d, want 1", g.Len())
	}

	// Growth within existing capacity reslices instead of reallocating.
	g2 := sparseGrid(t)
	g2.Reserve(50)
	g2.pos = g2.pos[:20]
	g2.cellOf = g2.cellOf[:20]
	g2.growDense(30)
	if len(g2.pos) != 31 || g2.cellOf[25] != noCell {
		t.Errorf("in-capacity growth: len=%d cellOf[25]=%d", len(g2.pos), g2.cellOf[25])
	}
}
