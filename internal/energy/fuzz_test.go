package energy

import (
	"math"
	"testing"
)

// FuzzEnergyConfig hunts for configurations that pass Validate yet break the
// invariants the simulator leans on: costs must be non-negative and finite
// for sane inputs, Fraction must stay inside [0, 1], and the election
// penalty must be non-negative, bounded by 2x ElectionWeight, and monotone
// in drained battery. Any violation would leak into election weights — and
// from there into trace digests — as NaN or order inversions.
func FuzzEnergyConfig(f *testing.F) {
	d := Default()
	f.Add(d.InitialJ, d.TxJPerByte, d.RxJPerByte, d.IdleW, d.ElectionWeight, d.RotateFrac, 0.5)
	f.Add(1.5, 0.0, 0.0, 0.01, 0.0, 0.0, 0.0)
	f.Add(1e-12, 1.0, 1.0, 1e6, 100.0, 1.0, 1.0)
	f.Add(50.0, 50e-6, 20e-6, 0.001, 2.0, 0.25, -3.0)
	f.Fuzz(func(t *testing.T, initial, tx, rx, idle, elect, rotate, frac float64) {
		c := Config{
			InitialJ:       initial,
			TxJPerByte:     tx,
			RxJPerByte:     rx,
			IdleW:          idle,
			ElectionWeight: elect,
			RotateFrac:     rotate,
		}
		if err := c.Validate(); err != nil {
			return
		}
		// Validate accepted it: every derived quantity must be sane.
		if !isFinite(c.InitialJ) || !isFinite(c.ElectionWeight) {
			t.Skip("infinite knobs validate but produce unbounded weights by design")
		}
		for _, bytes := range []int{0, 1, 20, 1 << 20} {
			if v := c.TxCost(bytes); v < 0 || math.IsNaN(v) {
				t.Fatalf("TxCost(%d) = %g", bytes, v)
			}
			if v := c.RxCost(bytes); v < 0 || math.IsNaN(v) {
				t.Fatalf("RxCost(%d) = %g", bytes, v)
			}
		}
		for _, dt := range []float64{-1, 0, 0.5, 1e9} {
			if v := c.IdleCost(dt); v < 0 || math.IsNaN(v) {
				t.Fatalf("IdleCost(%g) = %g", dt, v)
			}
		}
		remaining := frac * c.InitialJ
		if math.IsNaN(remaining) || math.IsInf(remaining, 0) {
			return
		}
		fr := c.Fraction(remaining)
		if fr < 0 || fr > 1 || math.IsNaN(fr) {
			t.Fatalf("Fraction(%g) = %g outside [0, 1]", remaining, fr)
		}
		for _, head := range []bool{false, true} {
			p := c.Penalty(remaining, head)
			if p < 0 || math.IsNaN(p) {
				t.Fatalf("Penalty(%g, %v) = %g", remaining, head, p)
			}
			if max := 2 * c.ElectionWeight; p > max {
				t.Fatalf("Penalty(%g, %v) = %g exceeds bound %g", remaining, head, p, max)
			}
		}
		// Monotonicity: strictly less battery never shrinks the penalty.
		if p1, p2 := c.Penalty(remaining, true), c.Penalty(remaining-c.InitialJ/4, true); p2 < p1 {
			t.Fatalf("penalty decreased as battery drained: %g -> %g", p1, p2)
		}
	})
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
