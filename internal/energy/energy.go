// Package energy models per-node batteries for energy-aware clustering
// (ROADMAP item 3, following the C-MANET exemplars in SNIPPETS.md). The
// radio layer charges transmit and receive costs per hello byte, an idle
// drain accrues with simulated time, and the remaining battery *fraction*
// feeds the clusterhead election: low-energy nodes advertise worse weights,
// and a head that falls below the rotation threshold takes an extra penalty
// so a healthier rival can take over. A node whose battery reaches zero is
// crashed through the simulator's existing churn path — it stops beaconing,
// its neighbors time it out, and its cluster re-forms around survivors.
//
// The model is deliberately linear and deterministic: every cost is a pure
// function of bytes sent/received and seconds elapsed, so trace digests stay
// reproducible, and scaling every energy parameter by a common factor leaves
// the battery-fraction trajectory — and therefore the entire simulation —
// bit-identical (the scale-invariance oracle the harness pins).
package energy

import (
	"errors"
	"fmt"
	"math"
)

// Defaults. InitialJ follows the C-MANET exemplar's 50 J budget; the radio
// costs approximate a WaveLAN-class interface (per-byte energy at 1 Mb/s),
// and the idle draw is kept small enough that a Table 1 run (900 s) does not
// deplete a default battery on its own.
const (
	// DefaultInitialJ is the starting battery in joules.
	DefaultInitialJ = 50.0
	// DefaultTxJPerByte is the transmit cost per hello byte in joules.
	DefaultTxJPerByte = 50e-6
	// DefaultRxJPerByte is the receive cost per hello byte in joules.
	DefaultRxJPerByte = 20e-6
	// DefaultIdleW is the idle drain in watts (joules per simulated second).
	DefaultIdleW = 0.001
	// DefaultElectionWeight is the election penalty of an empty battery.
	DefaultElectionWeight = 2.0
	// DefaultRotateFrac is the battery fraction below which a serving
	// clusterhead takes the full rotation penalty.
	DefaultRotateFrac = 0.25
	// FractionQuanta is the number of discrete battery levels the election
	// penalty distinguishes (5% buckets). Quantization is load-bearing, not
	// cosmetic: batteries drain monotonically, so with a continuous penalty
	// a node's freshly computed self-weight always looks worse than every
	// neighbor's slightly stale advertised weight, and a symmetric topology
	// deadlocks with every node deferring to everyone else forever. Bucketed
	// penalties make symmetric drain an exact tie (resolved by lowest ID)
	// while real battery disparities still order the election.
	FractionQuanta = 20
)

// Config parameterizes the battery model for one run.
type Config struct {
	// InitialJ is every node's starting battery in joules. Must be > 0.
	InitialJ float64
	// TxJPerByte is the energy charged per transmitted hello byte.
	TxJPerByte float64
	// RxJPerByte is the energy charged per successfully received hello byte.
	RxJPerByte float64
	// IdleW is the idle drain in watts, charged for elapsed simulated time.
	IdleW float64
	// ElectionWeight scales the election penalty: a node's advertised
	// weight grows by ElectionWeight * (1 - fraction remaining), with the
	// fraction quantized to FractionQuanta discrete levels, so a full
	// battery adds nothing and an empty one adds the full weight. 0
	// disables energy-weighted election (the battery still drains and
	// depletion still kills the node).
	ElectionWeight float64
	// RotateFrac is the battery fraction below which a node currently
	// serving as clusterhead takes one extra ElectionWeight of penalty, so
	// rotation kicks in before outright depletion. Must be in [0, 1].
	RotateFrac float64
}

// Default returns the package defaults.
func Default() Config {
	return Config{
		InitialJ:       DefaultInitialJ,
		TxJPerByte:     DefaultTxJPerByte,
		RxJPerByte:     DefaultRxJPerByte,
		IdleW:          DefaultIdleW,
		ElectionWeight: DefaultElectionWeight,
		RotateFrac:     DefaultRotateFrac,
	}
}

// ErrBadConfig tags every validation failure.
var ErrBadConfig = errors.New("energy: invalid config")

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.InitialJ <= 0:
		return fmt.Errorf("%w: initial battery = %g J", ErrBadConfig, c.InitialJ)
	case c.TxJPerByte < 0:
		return fmt.Errorf("%w: tx cost = %g J/byte", ErrBadConfig, c.TxJPerByte)
	case c.RxJPerByte < 0:
		return fmt.Errorf("%w: rx cost = %g J/byte", ErrBadConfig, c.RxJPerByte)
	case c.IdleW < 0:
		return fmt.Errorf("%w: idle drain = %g W", ErrBadConfig, c.IdleW)
	case c.ElectionWeight < 0:
		return fmt.Errorf("%w: election weight = %g", ErrBadConfig, c.ElectionWeight)
	case c.RotateFrac < 0 || c.RotateFrac > 1:
		return fmt.Errorf("%w: rotate fraction = %g outside [0, 1]", ErrBadConfig, c.RotateFrac)
	}
	return nil
}

// TxCost is the energy of transmitting one hello of the given size.
func (c Config) TxCost(bytes int) float64 { return c.TxJPerByte * float64(bytes) }

// RxCost is the energy of receiving one hello of the given size.
func (c Config) RxCost(bytes int) float64 { return c.RxJPerByte * float64(bytes) }

// IdleCost is the energy of idling for dt simulated seconds.
func (c Config) IdleCost(dt float64) float64 {
	if dt <= 0 {
		return 0
	}
	return c.IdleW * dt
}

// Fraction clamps remaining/InitialJ to [0, 1] — the scale-free battery
// level every election decision is based on.
func (c Config) Fraction(remaining float64) float64 {
	if remaining <= 0 {
		return 0
	}
	frac := remaining / c.InitialJ
	if frac > 1 {
		return 1
	}
	return frac
}

// Penalty is the election-weight surcharge for a node with the given
// remaining battery; head reports whether the node is subject to the
// rotation surcharge — it currently serves as a clusterhead, or was
// already rotated out of the role by the battery threshold (the caller
// keeps that mark, so an exactly-tied battery cannot re-elect the ex-head
// by lowest ID).
func (c Config) Penalty(remaining float64, head bool) float64 {
	if c.ElectionWeight <= 0 {
		return 0
	}
	frac := c.Fraction(remaining)
	p := c.ElectionWeight * (1 - math.Floor(frac*FractionQuanta)/FractionQuanta)
	if head && frac < c.RotateFrac {
		p += c.ElectionWeight
	}
	return p
}

// Scale returns a copy of c with every joule-denominated parameter
// multiplied by k. Because elections read only the battery fraction, a run
// under Scale(k) is bit-identical to one under c — the metamorphic
// scale-invariance oracle pinned by the harness.
func (c Config) Scale(k float64) Config {
	c.InitialJ *= k
	c.TxJPerByte *= k
	c.RxJPerByte *= k
	c.IdleW *= k
	return c
}
