package energy

import (
	"math"
	"testing"
)

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero battery", func(c *Config) { c.InitialJ = 0 }},
		{"negative battery", func(c *Config) { c.InitialJ = -1 }},
		{"negative tx cost", func(c *Config) { c.TxJPerByte = -1e-6 }},
		{"negative rx cost", func(c *Config) { c.RxJPerByte = -1e-6 }},
		{"negative idle", func(c *Config) { c.IdleW = -0.1 }},
		{"negative election weight", func(c *Config) { c.ElectionWeight = -2 }},
		{"rotate fraction above 1", func(c *Config) { c.RotateFrac = 1.5 }},
		{"rotate fraction negative", func(c *Config) { c.RotateFrac = -0.1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := Default()
			tt.mutate(&c)
			if err := c.Validate(); err == nil {
				t.Error("Validate should reject")
			}
		})
	}
}

func TestCosts(t *testing.T) {
	c := Default()
	if got := c.TxCost(20); got != c.TxJPerByte*20 {
		t.Errorf("TxCost(20) = %g", got)
	}
	if got := c.RxCost(12); got != c.RxJPerByte*12 {
		t.Errorf("RxCost(12) = %g", got)
	}
	if got := c.IdleCost(2); got != c.IdleW*2 {
		t.Errorf("IdleCost(2) = %g", got)
	}
	if got := c.IdleCost(-1); got != 0 {
		t.Errorf("IdleCost(-1) = %g, want 0 (time never runs backwards)", got)
	}
}

func TestFractionClamps(t *testing.T) {
	c := Default()
	if got := c.Fraction(c.InitialJ); got != 1 {
		t.Errorf("full battery fraction = %g", got)
	}
	if got := c.Fraction(2 * c.InitialJ); got != 1 {
		t.Errorf("overfull battery fraction = %g, want clamp to 1", got)
	}
	if got := c.Fraction(-3); got != 0 {
		t.Errorf("depleted battery fraction = %g, want 0", got)
	}
	if got := c.Fraction(c.InitialJ / 2); got != 0.5 {
		t.Errorf("half battery fraction = %g", got)
	}
}

func TestPenalty(t *testing.T) {
	c := Default()
	if got := c.Penalty(c.InitialJ, false); got != 0 {
		t.Errorf("full battery penalty = %g, want 0", got)
	}
	if got := c.Penalty(0, false); got != c.ElectionWeight {
		t.Errorf("empty battery penalty = %g, want %g", got, c.ElectionWeight)
	}
	// A serving head below the rotation threshold takes one extra
	// ElectionWeight; a member at the same level does not.
	low := c.InitialJ * c.RotateFrac / 2
	member := c.Penalty(low, false)
	head := c.Penalty(low, true)
	if head != member+c.ElectionWeight {
		t.Errorf("rotation surcharge = %g, want %g", head-member, c.ElectionWeight)
	}
	// At or above the threshold the head surcharge disappears.
	at := c.InitialJ * c.RotateFrac
	if c.Penalty(at, true) != c.Penalty(at, false) {
		t.Error("rotation surcharge applied at the threshold (want strict <)")
	}
	// Disabled election weight silences everything.
	c.ElectionWeight = 0
	if got := c.Penalty(0, true); got != 0 {
		t.Errorf("penalty with ElectionWeight 0 = %g", got)
	}
}

// TestPenaltyMonotone pins the shape the election depends on: less battery
// never yields a smaller penalty.
func TestPenaltyMonotone(t *testing.T) {
	c := Default()
	prev := math.Inf(-1)
	for r := c.InitialJ; r >= -1; r -= c.InitialJ / 64 {
		p := c.Penalty(r, true)
		if p < prev {
			t.Fatalf("penalty decreased from %g to %g at remaining %g", prev, p, r)
		}
		prev = p
	}
}

// TestScaleInvariance is the unit-level half of the harness's metamorphic
// oracle: scaling every joule-denominated knob by k leaves fractions and
// penalties bit-identical, because both are ratios of scaled quantities.
func TestScaleInvariance(t *testing.T) {
	c := Default()
	for _, k := range []float64{10, 0.25, 1e6} {
		s := c.Scale(k)
		if err := s.Validate(); err != nil {
			t.Fatalf("Scale(%g) invalid: %v", k, err)
		}
		for _, frac := range []float64{0, 0.1, 0.24999, 0.25, 0.5, 1} {
			r, rs := frac*c.InitialJ, frac*s.InitialJ
			if c.Fraction(r) != s.Fraction(rs) {
				t.Fatalf("k=%g frac=%g: fractions diverge", k, frac)
			}
			if c.Penalty(r, true) != s.Penalty(rs, true) {
				t.Fatalf("k=%g frac=%g: penalties diverge", k, frac)
			}
		}
		// The drained-joules ratio scales with k, so the depletion time of a
		// fixed beacon schedule is identical.
		if got, want := s.TxCost(20)/s.InitialJ, c.TxCost(20)/c.InitialJ; math.Abs(got-want) > 1e-15 {
			t.Fatalf("k=%g: tx drain fraction %g != %g", k, got, want)
		}
	}
}
