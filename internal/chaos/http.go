package chaos

import (
	"io"
	"net/http"
	"time"
)

// roundTripper injects scheduled faults in front of a real transport.
type roundTripper struct {
	inj  *Injector
	base http.RoundTripper
}

// RoundTripper wraps base so outbound requests consult the schedule first.
// The operation key is "host/path" (no scheme, no query), matched together
// with the request method; a nil base means http.DefaultTransport.
//
// Faults: latency delays then forwards; reset and error fail without
// touching the network; timeout blocks until the request's context is done
// (the caller's per-attempt deadline decides how long that is). A body rule
// matching the same request lets the round trip succeed, then fails the
// response body after N bytes.
func (inj *Injector) RoundTripper(base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &roundTripper{inj: inj, base: base}
}

func (rt *roundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	key := req.URL.Host + req.URL.Path
	if r, ok := rt.inj.pick(LayerHTTP, req.Method, key); ok {
		switch r.Act {
		case ActLatency:
			select {
			case <-time.After(r.Dur):
			case <-req.Context().Done():
				return nil, req.Context().Err()
			}
		case ActTimeout:
			// A peer that accepted the dial and went silent: nothing
			// happens until the caller's deadline fires.
			<-req.Context().Done()
			return nil, req.Context().Err()
		case ActReset:
			return nil, errInjected{"chaos: connection reset by peer"}
		case ActError:
			return nil, errInjected{"chaos: injected transport error"}
		}
	}
	resp, err := rt.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if r, ok := rt.inj.pick(LayerBody, req.Method, key); ok && r.Act == ActCut {
		resp.Body = &cutBody{rc: resp.Body, remain: r.N}
		resp.ContentLength = -1
	}
	return resp, nil
}

// cutBody delivers the first remain bytes of the wrapped body, then fails
// the read mid-stream — the reader sees a peer dying partway through a
// response.
type cutBody struct {
	rc     io.ReadCloser
	remain int
}

func (c *cutBody) Read(p []byte) (int, error) {
	if c.remain <= 0 {
		return 0, errInjected{"chaos: connection cut mid-body"}
	}
	if len(p) > c.remain {
		p = p[:c.remain]
	}
	n, err := c.rc.Read(p)
	c.remain -= n
	if err == io.EOF {
		// The real body ended before the cut point; pass EOF through.
		return n, err
	}
	if c.remain <= 0 && err == nil {
		err = errInjected{"chaos: connection cut mid-body"}
	}
	return n, err
}

func (c *cutBody) Close() error { return c.rc.Close() }
