// Package chaos is a deterministic, seedable fault-injection framework for
// exercising the distributed mobicd failure paths that production traffic
// only finds at 3 a.m.: peer timeouts, connection resets, torn journal
// writes, fsync failures, partitions and slow links.
//
// Faults come from a scripted Schedule — a small line-based DSL checked into
// the test (or fuzzed) — so a chaos run is reproducible: the same schedule
// against the same call sequence injects the same faults. Selectors count
// matching operations per rule (nth=K, nth=K..M, every=N) and an optional
// prob=P gate draws from a PRNG seeded by the schedule's seed and the rule's
// index, never from global randomness.
//
// An Injector instantiates a Schedule with fresh counters and wraps the
// three seams the cluster talks through:
//
//	inj.RoundTripper(base)  — coordinator→worker HTTP calls (latency,
//	                          timeout, reset, error, cut=N mid-body)
//	inj.Listener(l)         — inbound connections (reset, latency)
//	inj.File(class, f)      — journal/cache writes and fsyncs (torn=N,
//	                          error, latency)
//
// The wrappers are transparent when no rule matches, so the same test
// harness runs clean or chaotic depending only on the schedule text.
package chaos

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mobic/internal/obs"
)

// Layer names the interception seam a rule applies to.
type Layer uint8

// Interception layers.
const (
	// LayerHTTP intercepts outbound requests in the RoundTripper before
	// they reach the transport.
	LayerHTTP Layer = iota
	// LayerBody intercepts successful HTTP response bodies (cut=N).
	LayerBody
	// LayerWrite intercepts file writes (torn=N, error, latency).
	LayerWrite
	// LayerFsync intercepts file syncs (error, latency).
	LayerFsync
	// LayerAccept intercepts accepted inbound connections.
	LayerAccept

	numLayers
)

var layerNames = [numLayers]string{"http", "body", "write", "fsync", "accept"}

// String returns the layer's DSL keyword.
func (l Layer) String() string {
	if int(l) < len(layerNames) {
		return layerNames[l]
	}
	return "unknown"
}

// Action is the fault a fired rule injects.
type Action uint8

// Fault actions.
const (
	// ActReset fails the operation with a connection-reset-shaped error.
	ActReset Action = iota
	// ActTimeout blocks an HTTP request until its context is done, the
	// shape of a peer that accepted the connection and went silent.
	ActTimeout
	// ActError fails the operation with a generic injected error.
	ActError
	// ActLatency delays the operation by the rule's duration, then lets
	// it proceed.
	ActLatency
	// ActTorn writes only the first N bytes of the payload, then fails —
	// a power-loss-shaped partial write.
	ActTorn
	// ActCut delivers only the first N bytes of a response body, then
	// fails the read — a peer dying mid-stream.
	ActCut
)

var actionNames = map[Action]string{
	ActReset: "reset", ActTimeout: "timeout", ActError: "error",
	ActLatency: "latency", ActTorn: "torn", ActCut: "cut",
}

// String returns the action's DSL keyword (without its argument).
func (a Action) String() string { return actionNames[a] }

// Rule is one parsed schedule line: where to inject (layer, method,
// pattern), when (nth range, every, prob), and what (action + argument).
type Rule struct {
	// Layer selects the interception seam.
	Layer Layer
	// Method filters HTTP/body rules by request method; "*" (or empty)
	// matches any. Ignored on file and accept layers.
	Method string
	// Pattern is a *-glob matched against the operation key: "host/path"
	// for HTTP and body, the file class ("journal", "cache") for write and
	// fsync, the listener address for accept. '*' matches any run of
	// characters, '/' included.
	Pattern string
	// From and To bound the 1-based match ordinals the rule fires on,
	// inclusive; To = 0 means unbounded. The zero pair {0, 0} normalizes
	// to every match.
	From, To int
	// Every fires on every Every-th match inside the range (0/1 = all).
	Every int
	// Prob gates each otherwise-selected match with a seeded coin flip in
	// (0, 1]; 0 disables the gate.
	Prob float64
	// Act is the injected fault.
	Act Action
	// Dur is the latency argument (ActLatency).
	Dur time.Duration
	// N is the byte argument (ActTorn, ActCut).
	N int
}

// String renders the rule back into its canonical DSL line.
func (r Rule) String() string {
	var b strings.Builder
	b.WriteString(r.Layer.String())
	if r.Layer == LayerHTTP || r.Layer == LayerBody {
		m := r.Method
		if m == "" {
			m = "*"
		}
		b.WriteString(" " + m)
	}
	b.WriteString(" " + r.Pattern)
	switch {
	case r.From == r.To && r.From > 0:
		fmt.Fprintf(&b, " nth=%d", r.From)
	case r.To > 0:
		fmt.Fprintf(&b, " nth=%d..%d", r.From, r.To)
	case r.From > 1:
		fmt.Fprintf(&b, " nth=%d..", r.From)
	}
	if r.Every > 1 {
		fmt.Fprintf(&b, " every=%d", r.Every)
	}
	if r.Prob > 0 {
		fmt.Fprintf(&b, " prob=%g", r.Prob)
	}
	switch r.Act {
	case ActLatency:
		fmt.Fprintf(&b, " latency=%s", r.Dur)
	case ActTorn:
		fmt.Fprintf(&b, " torn=%d", r.N)
	case ActCut:
		fmt.Fprintf(&b, " cut=%d", r.N)
	default:
		b.WriteString(" " + r.Act.String())
	}
	return b.String()
}

// Schedule is a parsed fault script: an ordered rule list plus the PRNG
// seed for prob= gates. Schedules are immutable; New instantiates one with
// fresh counters.
type Schedule struct {
	// Seed feeds the per-rule PRNGs behind prob= selectors.
	Seed uint64
	// Rules fire first-match-wins per operation.
	Rules []Rule
}

// String renders the schedule back into canonical DSL text; Parse of the
// result yields an equal schedule (the fuzz harness pins this round trip).
func (s *Schedule) String() string {
	var b strings.Builder
	if s.Seed != 0 {
		fmt.Fprintf(&b, "seed %d\n", s.Seed)
	}
	for _, r := range s.Rules {
		b.WriteString(r.String() + "\n")
	}
	return b.String()
}

// layerActions restricts which faults make sense per seam; Parse rejects
// the rest so a schedule typo fails loudly instead of silently never firing.
var layerActions = [numLayers]map[Action]bool{
	LayerHTTP:   {ActReset: true, ActTimeout: true, ActError: true, ActLatency: true},
	LayerBody:   {ActCut: true},
	LayerWrite:  {ActTorn: true, ActError: true, ActLatency: true},
	LayerFsync:  {ActError: true, ActLatency: true},
	LayerAccept: {ActReset: true, ActLatency: true},
}

// Parse reads the schedule DSL: one rule per line,
//
//	seed <uint>
//	http   <METHOD|*> <pattern> [nth=K|K..|K..M] [every=N] [prob=P] <fault>
//	body   <METHOD|*> <pattern> [selectors]      cut=<bytes>
//	write  <class-pattern>      [selectors]      torn=<bytes>|error|latency=<dur>
//	fsync  <class-pattern>      [selectors]      error|latency=<dur>
//	accept <addr-pattern>       [selectors]      reset|latency=<dur>
//
// with '#' comments and blank lines ignored. Faults: reset, timeout, error,
// latency=<Go duration>, torn=<bytes>, cut=<bytes>.
func Parse(src string) (*Schedule, error) {
	s := &Schedule{}
	for lineNo, line := range strings.Split(src, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if fields[0] == "seed" {
			if len(fields) != 2 {
				return nil, fmt.Errorf("chaos: line %d: seed wants one integer", lineNo+1)
			}
			seed, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("chaos: line %d: seed: %v", lineNo+1, err)
			}
			s.Seed = seed
			continue
		}
		rule, err := parseRule(fields)
		if err != nil {
			return nil, fmt.Errorf("chaos: line %d: %v", lineNo+1, err)
		}
		s.Rules = append(s.Rules, rule)
	}
	return s, nil
}

// MustParse is Parse for schedules embedded in tests; it panics on error.
func MustParse(src string) *Schedule {
	s, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return s
}

func parseRule(fields []string) (Rule, error) {
	var r Rule
	layer := -1
	for l, name := range layerNames {
		if fields[0] == name {
			layer = l
			break
		}
	}
	if layer < 0 {
		return r, fmt.Errorf("unknown layer %q", fields[0])
	}
	r.Layer = Layer(layer)
	rest := fields[1:]
	if r.Layer == LayerHTTP || r.Layer == LayerBody {
		if len(rest) < 2 {
			return r, fmt.Errorf("%s rule wants METHOD and pattern", r.Layer)
		}
		r.Method = rest[0]
		if r.Method != "*" && r.Method != strings.ToUpper(r.Method) {
			return r, fmt.Errorf("method %q must be upper-case or *", r.Method)
		}
		rest = rest[1:]
	}
	if len(rest) < 2 {
		return r, fmt.Errorf("%s rule wants a pattern and a fault", r.Layer)
	}
	r.Pattern = rest[0]
	rest = rest[1:]

	// Everything between the pattern and the final fault token is a
	// selector.
	for _, tok := range rest[:len(rest)-1] {
		key, val, ok := strings.Cut(tok, "=")
		if !ok {
			return r, fmt.Errorf("selector %q wants key=value", tok)
		}
		switch key {
		case "nth":
			lo, hi, err := parseRange(val)
			if err != nil {
				return r, err
			}
			r.From, r.To = lo, hi
		case "every":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return r, fmt.Errorf("every=%q wants a positive integer", val)
			}
			r.Every = n
		case "prob":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || p <= 0 || p > 1 {
				return r, fmt.Errorf("prob=%q wants a probability in (0, 1]", val)
			}
			r.Prob = p
		default:
			return r, fmt.Errorf("unknown selector %q", key)
		}
	}

	fault := rest[len(rest)-1]
	name, arg, hasArg := strings.Cut(fault, "=")
	found := false
	for act, actName := range actionNames {
		if name == actName {
			r.Act, found = act, true
			break
		}
	}
	if !found {
		return r, fmt.Errorf("unknown fault %q", name)
	}
	switch r.Act {
	case ActLatency:
		if !hasArg {
			return r, fmt.Errorf("latency wants a duration argument")
		}
		d, err := time.ParseDuration(arg)
		if err != nil || d <= 0 {
			return r, fmt.Errorf("latency=%q wants a positive duration", arg)
		}
		r.Dur = d
	case ActTorn, ActCut:
		if !hasArg {
			return r, fmt.Errorf("%s wants a byte-count argument", name)
		}
		n, err := strconv.Atoi(arg)
		if err != nil || n < 0 {
			return r, fmt.Errorf("%s=%q wants a non-negative byte count", name, arg)
		}
		r.N = n
	default:
		if hasArg {
			return r, fmt.Errorf("fault %s takes no argument", name)
		}
	}
	if !layerActions[r.Layer][r.Act] {
		return r, fmt.Errorf("fault %s does not apply to the %s layer", name, r.Layer)
	}
	return r, nil
}

// parseRange parses "K", "K.." or "K..M" into an inclusive 1-based range.
func parseRange(val string) (lo, hi int, err error) {
	from, to, ranged := strings.Cut(val, "..")
	lo, err = strconv.Atoi(from)
	if err != nil || lo < 1 {
		return 0, 0, fmt.Errorf("nth=%q wants a positive ordinal", val)
	}
	if !ranged {
		return lo, lo, nil
	}
	if to == "" {
		return lo, 0, nil // open-ended
	}
	hi, err = strconv.Atoi(to)
	if err != nil || hi < lo {
		return 0, 0, fmt.Errorf("nth=%q wants K..M with M >= K", val)
	}
	return lo, hi, nil
}

// matchGlob reports whether s matches pattern, where '*' matches any run of
// characters ('/' included — URL paths are the common subject) and every
// other byte matches itself.
func matchGlob(pattern, s string) bool {
	// Iterative greedy match with single-star backtracking.
	var starP, starS = -1, 0
	p, i := 0, 0
	for i < len(s) {
		switch {
		case p < len(pattern) && pattern[p] == '*':
			starP, starS = p, i
			p++
		case p < len(pattern) && pattern[p] == s[i]:
			p++
			i++
		case starP >= 0:
			starS++
			p, i = starP+1, starS
		default:
			return false
		}
	}
	for p < len(pattern) && pattern[p] == '*' {
		p++
	}
	return p == len(pattern)
}

// ruleState is one rule plus its live counters.
type ruleState struct {
	Rule
	seen  atomic.Int64 // operations that matched layer/method/pattern
	fired atomic.Int64 // faults actually injected

	rngMu sync.Mutex
	rng   *rand.Rand
}

// Injector instantiates a Schedule with fresh counters and hands out the
// seam wrappers. All methods are safe for concurrent use.
type Injector struct {
	rules []*ruleState
	rec   obs.Recorder
}

// Option configures an Injector.
type Option func(*Injector)

// WithRecorder routes injection telemetry (mobic_chaos_injected_total) into
// rec.
func WithRecorder(rec obs.Recorder) Option {
	return func(i *Injector) { i.rec = rec }
}

// New instantiates sch with fresh counters and per-rule PRNGs derived from
// the schedule seed, so two Injectors over the same schedule inject
// identically against the same operation sequence.
func New(sch *Schedule, opts ...Option) *Injector {
	inj := &Injector{rec: obs.Nop{}}
	for i, r := range sch.Rules {
		rs := &ruleState{Rule: r}
		if r.Prob > 0 {
			rs.rng = rand.New(rand.NewPCG(sch.Seed, uint64(i)+1))
		}
		inj.rules = append(inj.rules, rs)
	}
	for _, o := range opts {
		o(inj)
	}
	return inj
}

// pick returns the fault to inject for one operation, first-match-wins, or
// ok=false when no rule fires. method is "" outside the HTTP layers.
func (inj *Injector) pick(layer Layer, method, key string) (Rule, bool) {
	for _, rs := range inj.rules {
		if rs.Layer != layer {
			continue
		}
		if (layer == LayerHTTP || layer == LayerBody) &&
			rs.Method != "*" && rs.Method != "" && rs.Method != method {
			continue
		}
		if !matchGlob(rs.Pattern, key) {
			continue
		}
		n := rs.seen.Add(1)
		if rs.From > 0 && n < int64(rs.From) {
			continue
		}
		if rs.To > 0 && n > int64(rs.To) {
			continue
		}
		if rs.Every > 1 && (n-int64(max(rs.From, 1)))%int64(rs.Every) != 0 {
			continue
		}
		if rs.Prob > 0 {
			rs.rngMu.Lock()
			miss := rs.rng.Float64() >= rs.Prob
			rs.rngMu.Unlock()
			if miss {
				continue
			}
		}
		rs.fired.Add(1)
		inj.rec.Add(obs.ChaosInjected, 1)
		return rs.Rule, true
	}
	return Rule{}, false
}

// Fired returns the total faults injected so far.
func (inj *Injector) Fired() int64 {
	var n int64
	for _, rs := range inj.rules {
		n += rs.fired.Load()
	}
	return n
}

// FiredByRule returns per-rule injection counts, schedule order.
func (inj *Injector) FiredByRule() []int64 {
	out := make([]int64, len(inj.rules))
	for i, rs := range inj.rules {
		out[i] = rs.fired.Load()
	}
	return out
}

// errInjected tags every chaos-made error so tests (and retry loops) can
// tell an injected fault from a real one.
type errInjected struct{ msg string }

func (e errInjected) Error() string { return e.msg }

// IsInjected reports whether err was manufactured by a chaos injector,
// unwrapping any %w chains the code under test added on the way up.
func IsInjected(err error) bool {
	var e errInjected
	return errors.As(err, &e)
}
