package chaos

import (
	"time"
)

// OSFile is the slice of *os.File the journal and disk cache write through.
// It is deliberately minimal so any durable sink can be intercepted; the
// service layer declares a structurally identical interface, which Go's
// structural typing satisfies without either package importing the other.
type OSFile interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

// file intercepts writes and fsyncs on one open file.
type file struct {
	OSFile
	inj   *Injector
	class string
}

// File wraps f so writes and syncs consult the schedule. class is the
// operation key matched by write/fsync rule patterns — "journal" and
// "cache" are the conventional classes.
//
// A torn=N write persists only the first N bytes of the payload and then
// fails — the on-disk shape of power loss mid-write. An fsync error fails
// the sync without touching the data.
func (inj *Injector) File(class string, f OSFile) OSFile {
	return &file{OSFile: f, inj: inj, class: class}
}

func (f *file) Write(p []byte) (int, error) {
	r, ok := f.inj.pick(LayerWrite, "", f.class)
	if !ok {
		return f.OSFile.Write(p)
	}
	switch r.Act {
	case ActLatency:
		time.Sleep(r.Dur)
		return f.OSFile.Write(p)
	case ActTorn:
		n := min(r.N, len(p))
		if n > 0 {
			if m, err := f.OSFile.Write(p[:n]); err != nil {
				return m, err
			}
		}
		return n, errInjected{"chaos: torn write"}
	default: // ActError
		return 0, errInjected{"chaos: injected write error"}
	}
}

func (f *file) Sync() error {
	r, ok := f.inj.pick(LayerFsync, "", f.class)
	if !ok {
		return f.OSFile.Sync()
	}
	switch r.Act {
	case ActLatency:
		time.Sleep(r.Dur)
		return f.OSFile.Sync()
	default: // ActError
		return errInjected{"chaos: injected fsync error"}
	}
}
