package chaos

import (
	"net"
	"time"
)

// listener injects accept-side faults: connections matched by an accept
// rule are reset (closed immediately after accept) or delayed before being
// handed to the server.
type listener struct {
	net.Listener
	inj *Injector
}

// Listener wraps l so accepted connections consult the schedule. The
// operation key is the listener's own address string, so a rule pattern of
// "*" partitions the whole endpoint and "127.0.0.1:9001*" one peer.
//
// A reset closes the accepted connection immediately — the dialing client
// sees its request die on an open socket, the shape of a one-sided network
// partition. Latency holds the connection before the server sees it.
func (inj *Injector) Listener(l net.Listener) net.Listener {
	return &listener{Listener: l, inj: inj}
}

func (l *listener) Accept() (net.Conn, error) {
	for {
		conn, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		r, ok := l.inj.pick(LayerAccept, "", l.Addr().String())
		if !ok {
			return conn, nil
		}
		switch r.Act {
		case ActReset:
			conn.Close()
			// Swallow this connection and wait for the next; returning
			// an error would tear down the whole Serve loop.
			continue
		case ActLatency:
			time.Sleep(r.Dur)
		}
		return conn, nil
	}
}
