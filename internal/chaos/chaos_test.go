package chaos

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mobic/internal/obs"
)

func TestParseAndRoundTrip(t *testing.T) {
	src := `
# a comment
seed 42
http GET */v1/jobs/* nth=2..4 every=2 reset
http * *:9001* prob=0.5 latency=50ms
body POST */v1/jobs nth=1 cut=16
write journal nth=3 torn=5
fsync journal error
accept * nth=1..2 reset
`
	s, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if s.Seed != 42 {
		t.Fatalf("seed = %d, want 42", s.Seed)
	}
	if len(s.Rules) != 6 {
		t.Fatalf("rules = %d, want 6", len(s.Rules))
	}
	r := s.Rules[0]
	if r.Layer != LayerHTTP || r.Method != "GET" || r.From != 2 || r.To != 4 || r.Every != 2 || r.Act != ActReset {
		t.Fatalf("rule 0 parsed wrong: %+v", r)
	}
	// Canonical text reparses to an equal schedule.
	again, err := Parse(s.String())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if again.String() != s.String() {
		t.Fatalf("round trip diverged:\n%s\nvs\n%s", s.String(), again.String())
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"warp * reset",               // unknown layer
		"http get /x reset",          // lower-case method
		"http GET /x explode",        // unknown fault
		"http GET /x cut=4",          // cut not valid on http layer
		"write journal reset",        // reset not valid on write layer
		"http GET /x nth=0 reset",    // ordinal must be >= 1
		"http GET /x nth=5..2 reset", // inverted range
		"http GET /x prob=1.5 reset", // prob out of range
		"http GET /x latency=banana", // bad duration
		"http GET /x every=x reset",  // bad every
		"http GET /x reset=3",        // argument on bare fault
		"seed -1",                    // negative seed
		"http GET",                   // missing pattern+fault
		"fsync journal torn=3",       // torn not valid on fsync
		"http GET /x bogus=1 reset",  // unknown selector
		"body GET /x reset",          // body layer only cuts
		"http GET /x latency=-5ms",   // non-positive duration
		"http GET /x torn=1",         // torn not valid on http
		"accept * timeout",           // timeout not valid on accept
		"write journal torn=x",       // bad byte count
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) accepted, want error", src)
		}
	}
}

func TestMatchGlob(t *testing.T) {
	cases := []struct {
		pat, s string
		want   bool
	}{
		{"*", "anything/at/all", true},
		{"*/v1/jobs/*", "127.0.0.1:9001/v1/jobs/abc", true},
		{"*/v1/jobs/*", "127.0.0.1:9001/v1/jobs", false},
		{"*/checkpoints", "h/v1/jobs/j1/checkpoints", true},
		{"journal", "journal", true},
		{"journal", "cache", false},
		{"a*b*c", "axxbyyc", true},
		{"a*b*c", "axxbyy", false},
		{"", "", true},
		{"", "x", false},
	}
	for _, c := range cases {
		if got := matchGlob(c.pat, c.s); got != c.want {
			t.Errorf("matchGlob(%q, %q) = %v, want %v", c.pat, c.s, got, c.want)
		}
	}
}

// opKeys drives pick() directly to test selector arithmetic.
func fireSequence(t *testing.T, src string, layer Layer, method, key string, n int) []bool {
	t.Helper()
	inj := New(MustParse(src))
	out := make([]bool, n)
	for i := range out {
		_, out[i] = inj.pick(layer, method, key)
	}
	return out
}

func TestSelectors(t *testing.T) {
	// nth=2..4: fires on matches 2, 3, 4 only.
	got := fireSequence(t, "http GET /x nth=2..4 reset", LayerHTTP, "GET", "/x", 6)
	want := []bool{false, true, true, true, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("nth=2..4 firing = %v, want %v", got, want)
		}
	}
	// every=3 from the start: matches 1, 4, 7.
	got = fireSequence(t, "http GET /x every=3 reset", LayerHTTP, "GET", "/x", 7)
	want = []bool{true, false, false, true, false, false, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("every=3 firing = %v, want %v", got, want)
		}
	}
	// nth=2.. open-ended: everything from the second match.
	got = fireSequence(t, "http GET /x nth=2.. reset", LayerHTTP, "GET", "/x", 4)
	want = []bool{false, true, true, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("nth=2.. firing = %v, want %v", got, want)
		}
	}
	// Method filter: POST rule never sees GETs.
	got = fireSequence(t, "http POST /x reset", LayerHTTP, "GET", "/x", 3)
	for _, fired := range got {
		if fired {
			t.Fatal("POST rule fired on a GET")
		}
	}
}

func TestProbDeterminism(t *testing.T) {
	src := "seed 7\nhttp GET /x prob=0.5 reset"
	run := func() []bool {
		return fireSequence(t, src, LayerHTTP, "GET", "/x", 64)
	}
	a, b := run(), run()
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("two injectors over the same schedule diverged")
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == 64 {
		t.Fatalf("prob=0.5 fired %d/64 times; want a strict subset", fired)
	}
	// A different seed gives a different (deterministic) pattern.
	c := fireSequence(t, "seed 8\nhttp GET /x prob=0.5 reset", LayerHTTP, "GET", "/x", 64)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seed 7 and seed 8 injected identically over 64 draws")
	}
}

func TestFirstMatchWins(t *testing.T) {
	src := `
http GET /x nth=1 error
http GET /x reset
`
	inj := New(MustParse(src))
	r, ok := inj.pick(LayerHTTP, "GET", "/x")
	if !ok || r.Act != ActError {
		t.Fatalf("first pick = %+v ok=%v, want error rule", r, ok)
	}
	// Second rule's counter also advanced? No — first match consumed the
	// operation, so rule 2's seen count must still be 0 for match 1 and
	// pick up match 2.
	r, ok = inj.pick(LayerHTTP, "GET", "/x")
	if !ok || r.Act != ActReset {
		t.Fatalf("second pick = %+v ok=%v, want reset rule", r, ok)
	}
	if counts := inj.FiredByRule(); counts[0] != 1 || counts[1] != 1 {
		t.Fatalf("FiredByRule = %v, want [1 1]", counts)
	}
}

func TestRoundTripperFaults(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "0123456789abcdef0123456789abcdef")
	}))
	defer srv.Close()
	host := strings.TrimPrefix(srv.URL, "http://")

	reg := obs.NewRegistry()
	inj := New(MustParse(`
http GET `+host+`/reset nth=1 reset
http GET `+host+`/timeout nth=1 timeout
http GET `+host+`/slow nth=1 latency=30ms
body GET `+host+`/cut nth=1 cut=10
`), WithRecorder(reg))
	client := &http.Client{Transport: inj.RoundTripper(nil)}

	// reset: transport error, tagged injected.
	if _, err := client.Get(srv.URL + "/reset"); err == nil {
		t.Fatal("reset rule: request succeeded")
	} else if !IsInjected(errors.Unwrap(unwrapURL(err))) && !strings.Contains(err.Error(), "chaos") {
		t.Fatalf("reset rule: error not tagged: %v", err)
	}

	// timeout: blocks until the context deadline.
	ctx, cancel := context.WithTimeout(context.Background(), 40*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", srv.URL+"/timeout", nil)
	start := time.Now()
	if _, err := client.Do(req); err == nil {
		t.Fatal("timeout rule: request succeeded")
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("timeout rule returned after %v, want ~40ms block", d)
	}

	// latency: delayed but successful.
	start = time.Now()
	resp, err := client.Get(srv.URL + "/slow")
	if err != nil {
		t.Fatalf("latency rule: %v", err)
	}
	resp.Body.Close()
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("latency rule: round trip took %v, want >= 30ms", d)
	}

	// cut: success then mid-body failure after 10 bytes.
	resp, err = client.Get(srv.URL + "/cut")
	if err != nil {
		t.Fatalf("cut rule round trip: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err == nil {
		t.Fatal("cut rule: body read succeeded")
	}
	if len(body) != 10 {
		t.Fatalf("cut rule delivered %d bytes, want 10", len(body))
	}

	// Unmatched paths pass through untouched.
	resp, err = client.Get(srv.URL + "/clean")
	if err != nil {
		t.Fatalf("clean request: %v", err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if len(body) != 32 {
		t.Fatalf("clean request read %d bytes, want 32", len(body))
	}

	if inj.Fired() != 4 {
		t.Fatalf("Fired = %d, want 4", inj.Fired())
	}
	if got := reg.Counter(obs.ChaosInjected); got != 4 {
		t.Fatalf("mobic_chaos_injected_total = %d, want 4", got)
	}
}

// unwrapURL strips the *url.Error wrapper http.Client adds.
func unwrapURL(err error) error {
	type wrapper interface{ Unwrap() error }
	if w, ok := err.(wrapper); ok {
		return w.Unwrap()
	}
	return err
}

func TestListenerReset(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	inj := New(MustParse("accept * nth=1 reset"))
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	})}
	wrapped := inj.Listener(l)
	go srv.Serve(wrapped)
	defer srv.Close()

	// First connection is reset; a plain GET on a fresh connection fails.
	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}, Timeout: 2 * time.Second}
	if _, err := client.Get("http://" + l.Addr().String()); err == nil {
		t.Fatal("first connection survived an accept reset")
	}
	// Second connection goes through.
	resp, err := client.Get("http://" + l.Addr().String())
	if err != nil {
		t.Fatalf("second connection: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "ok" {
		t.Fatalf("second connection body = %q", body)
	}
}

// memFile is an in-memory OSFile.
type memFile struct {
	buf    bytes.Buffer
	synced int
}

func (m *memFile) Write(p []byte) (int, error) { return m.buf.Write(p) }
func (m *memFile) Sync() error                 { m.synced++; return nil }
func (m *memFile) Close() error                { return nil }

func TestFileTornWriteAndFsyncError(t *testing.T) {
	inj := New(MustParse(`
write journal nth=2 torn=3
fsync journal nth=2 error
`))
	mf := &memFile{}
	f := inj.File("journal", mf)

	if n, err := f.Write([]byte("hello")); n != 5 || err != nil {
		t.Fatalf("write 1: n=%d err=%v", n, err)
	}
	n, err := f.Write([]byte("world"))
	if err == nil {
		t.Fatal("write 2: torn write reported success")
	}
	if n != 3 {
		t.Fatalf("write 2: n=%d, want 3", n)
	}
	if got := mf.buf.String(); got != "hellowor" {
		t.Fatalf("on-disk bytes = %q, want %q", got, "hellowor")
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync 1: %v", err)
	}
	if err := f.Sync(); err == nil {
		t.Fatal("sync 2: injected fsync error missing")
	} else if !IsInjected(err) {
		t.Fatalf("sync 2: error not tagged injected: %v", err)
	}
	if mf.synced != 1 {
		t.Fatalf("underlying syncs = %d, want 1", mf.synced)
	}
	// A different class is untouched.
	g := inj.File("cache", &memFile{})
	for i := 0; i < 4; i++ {
		if _, err := g.Write([]byte("x")); err != nil {
			t.Fatalf("cache write %d: %v", i, err)
		}
		if err := g.Sync(); err != nil {
			t.Fatalf("cache sync %d: %v", i, err)
		}
	}
}
