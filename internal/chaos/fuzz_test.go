package chaos

import (
	"strings"
	"testing"
)

// FuzzChaosSchedule pins the parser's robustness and the String/Parse round
// trip: any schedule the parser accepts must render to canonical text that
// reparses to the identical canonical text (a fixed point), and parsing must
// never panic on arbitrary input.
func FuzzChaosSchedule(f *testing.F) {
	seeds := []string{
		"seed 42\nhttp GET */v1/jobs/* nth=2..4 every=2 reset\n",
		"http * * prob=0.25 latency=10ms\n",
		"body POST */v1/jobs nth=1 cut=16\nwrite journal torn=5\n",
		"fsync journal nth=3.. error\naccept 127.0.0.1:* reset\n",
		"# only a comment\n\n",
		"seed 18446744073709551615\nhttp DELETE /x nth=7 timeout\n",
		"write * every=2 latency=1ms\n",
		"http GET a*b*c nth=1..1 error\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		s, err := Parse(src)
		if err != nil {
			return
		}
		canon := s.String()
		again, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical text rejected: %v\ninput: %q\ncanonical: %q", err, src, canon)
		}
		if got := again.String(); got != canon {
			t.Fatalf("String/Parse not a fixed point:\nfirst:  %q\nsecond: %q", canon, got)
		}
		// An instantiated injector must not panic when driven.
		inj := New(s)
		for i := 0; i < 4; i++ {
			inj.pick(LayerHTTP, "GET", "host/v1/jobs/x")
			inj.pick(LayerWrite, "", "journal")
			inj.pick(LayerFsync, "", "cache")
			inj.pick(LayerAccept, "", "127.0.0.1:1")
			inj.pick(LayerBody, "POST", "host/v1/jobs")
		}
		_ = inj.Fired()
		if strings.Count(canon, "\n") < len(s.Rules) {
			t.Fatalf("canonical text lost rules: %q", canon)
		}
	})
}
