// Package cache is the content-addressed result cache behind mobicd's
// duplicate-submission collapse: finished job outputs are stored under the
// canonical spec digest (service.JobSpec.Digest), so resubmitting an
// identical sweep — the common case under heavy traffic — returns the
// finished result in O(1) instead of re-simulating it.
//
// Two layers share one key space. An in-memory LRU bounded by entry count
// serves the hot set; an optional on-disk layer bounded by total bytes
// survives restarts. Disk writes are atomic (temp file + rename) and disk
// reads are CRC-checked, so a torn write or bit rot degrades to a cache
// miss, never to a corrupt result. The digest identity argument makes both
// layers safe: the simulator is deterministic per spec (golden trace
// digests, resume-equals-rerun), so a value stored under a digest is THE
// result of that spec, whichever worker computed it and however long ago.
//
// Flight is the companion singleflight map: it collapses concurrent
// identical submissions onto the one in-flight job so a burst of duplicate
// sweeps costs one simulation.
package cache

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"mobic/internal/obs"
)

// fileMagic heads every on-disk cache entry; bump the digit on any format
// change so stale files read as misses, not garbage.
var fileMagic = []byte("MOBICCACHE1\n")

// fileSuffix names cache entries on disk, keeping the scan cheap and
// temp files (different suffix) invisible to it.
const fileSuffix = ".res"

// corruptSuffix is appended to a cache file that failed its CRC or framing
// check: the entry is quarantined for forensics instead of deleted, and the
// open-time scan ignores it.
const corruptSuffix = ".corrupt"

// maxValueBytes bounds a single cached value; larger payloads and
// impossible on-disk length prefixes are treated as corruption. The output
// of the largest admissible sweep stays far below it.
const maxValueBytes = 64 << 20

// Config parameterizes a Cache.
type Config struct {
	// MaxEntries bounds the in-memory LRU (default 256).
	MaxEntries int
	// Dir, when non-empty, enables the on-disk layer under this directory
	// (created if needed). Empty keeps the cache memory-only.
	Dir string
	// MaxDiskBytes bounds the on-disk layer's total payload bytes
	// (default 256 MiB; only with Dir).
	MaxDiskBytes int64
	// Obs receives cache telemetry (hits, misses, evictions). Defaults to
	// obs.Nop.
	Obs obs.Recorder
}

// memEntry is one in-memory LRU slot.
type memEntry struct {
	key string
	val []byte
}

// diskEntry tracks one on-disk file for the byte-bounded eviction order.
type diskEntry struct {
	key  string
	size int64
}

// Cache is the two-layer content-addressed store. All methods are safe for
// concurrent use.
type Cache struct {
	cfg Config

	mu sync.Mutex
	// In-memory LRU: most recent at the list front.
	mem    *list.List
	memIdx map[string]*list.Element
	// On-disk LRU over payload bytes, same orientation.
	disk      *list.List
	diskIdx   map[string]*list.Element
	diskBytes int64
}

// Open builds a cache and, when cfg.Dir is set, indexes the entries a
// previous process left there (ordered oldest-first by modification time,
// so the byte bound evicts stale results before fresh ones). Unreadable or
// torn files are deleted on first access, not at open: the scan stays a
// stat-only pass.
func Open(cfg Config) (*Cache, error) {
	if cfg.MaxEntries <= 0 {
		cfg.MaxEntries = 256
	}
	if cfg.MaxDiskBytes <= 0 {
		cfg.MaxDiskBytes = 256 << 20
	}
	if cfg.Obs == nil {
		cfg.Obs = obs.Nop{}
	}
	c := &Cache{
		cfg:     cfg,
		mem:     list.New(),
		memIdx:  make(map[string]*list.Element),
		disk:    list.New(),
		diskIdx: make(map[string]*list.Element),
	}
	if cfg.Dir == "" {
		return c, nil
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	entries, err := os.ReadDir(cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	type found struct {
		key   string
		size  int64
		mtime int64
	}
	var fs []found
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, fileSuffix) {
			continue
		}
		key := strings.TrimSuffix(name, fileSuffix)
		if !validKey(key) {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		fs = append(fs, found{key, info.Size(), info.ModTime().UnixNano()})
	}
	sort.Slice(fs, func(i, j int) bool { return fs[i].mtime < fs[j].mtime })
	for _, f := range fs {
		c.diskIdx[f.key] = c.disk.PushFront(diskEntry{key: f.key, size: f.size})
		c.diskBytes += f.size
	}
	c.evictDiskLocked()
	return c, nil
}

// validKey restricts keys to lowercase-hex digests, which is both the only
// key the service produces and a guarantee the key is a safe file name.
func validKey(key string) bool {
	if len(key) == 0 || len(key) > 128 {
		return false
	}
	for i := 0; i < len(key); i++ {
		ch := key[i]
		if (ch < '0' || ch > '9') && (ch < 'a' || ch > 'f') {
			return false
		}
	}
	return true
}

// Get returns the cached value for key and whether it was present, checking
// the in-memory layer first and falling back to a CRC-verified disk read
// (which promotes the value back into memory). Every lookup records a hit
// or a miss into the configured obs recorder.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	if el, ok := c.memIdx[key]; ok {
		c.mem.MoveToFront(el)
		val := el.Value.(memEntry).val
		c.mu.Unlock()
		c.cfg.Obs.Add(obs.CacheHits, 1)
		return val, true
	}
	el, onDisk := c.diskIdx[key]
	c.mu.Unlock()
	if !onDisk {
		c.cfg.Obs.Add(obs.CacheMisses, 1)
		return nil, false
	}
	val, err := readEntry(c.path(key))
	c.mu.Lock()
	if err != nil {
		// Torn or rotten file: quarantine it under a .corrupt suffix —
		// out of the lookup path (the next write starts clean) but kept
		// on disk for forensics. The open-time scan skips the suffix, so
		// a quarantined entry can never be served again.
		if cur, ok := c.diskIdx[key]; ok && cur == el {
			c.removeDiskLocked(cur)
			if os.Rename(c.path(key), c.path(key)+corruptSuffix) != nil {
				os.Remove(c.path(key)) // quarantine failed: fall back to dropping
			}
			c.cfg.Obs.Add(obs.CacheCorrupt, 1)
		}
		c.mu.Unlock()
		c.cfg.Obs.Add(obs.CacheMisses, 1)
		return nil, false
	}
	if cur, ok := c.diskIdx[key]; ok {
		c.disk.MoveToFront(cur)
	}
	c.putMemLocked(key, val)
	c.mu.Unlock()
	c.cfg.Obs.Add(obs.CacheHits, 1)
	return val, true
}

// Put stores val under key in both layers. Oversized values and malformed
// keys are ignored — the cache is an optimization, never a correctness
// dependency. Disk failures likewise degrade silently to memory-only.
func (c *Cache) Put(key string, val []byte) {
	if !validKey(key) || len(val) == 0 || int64(len(val)) > maxValueBytes {
		return
	}
	c.mu.Lock()
	c.putMemLocked(key, val)
	if c.cfg.Dir == "" {
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	// The write happens outside the lock — rename is atomic, and last
	// writer wins with an identical value by digest identity.
	err := writeEntry(c.cfg.Dir, c.path(key), val)
	c.mu.Lock()
	defer c.mu.Unlock()
	if err != nil {
		return
	}
	if el, ok := c.diskIdx[key]; ok {
		c.diskBytes += int64(len(val)) - el.Value.(diskEntry).size
		el.Value = diskEntry{key: key, size: int64(len(val))}
		c.disk.MoveToFront(el)
	} else {
		c.diskIdx[key] = c.disk.PushFront(diskEntry{key: key, size: int64(len(val))})
		c.diskBytes += int64(len(val))
	}
	c.evictDiskLocked()
}

// putMemLocked inserts or refreshes the in-memory entry and applies the
// entry bound. Callers must hold mu.
func (c *Cache) putMemLocked(key string, val []byte) {
	if el, ok := c.memIdx[key]; ok {
		el.Value = memEntry{key: key, val: val}
		c.mem.MoveToFront(el)
		return
	}
	c.memIdx[key] = c.mem.PushFront(memEntry{key: key, val: val})
	for c.mem.Len() > c.cfg.MaxEntries {
		oldest := c.mem.Back()
		ent := oldest.Value.(memEntry)
		c.mem.Remove(oldest)
		delete(c.memIdx, ent.key)
		// Falling out of memory only counts as an eviction when the entry
		// is not still serveable from disk.
		if _, onDisk := c.diskIdx[ent.key]; !onDisk {
			c.cfg.Obs.Add(obs.CacheEvictions, 1)
		}
	}
}

// evictDiskLocked enforces the byte bound, oldest entries first. Callers
// must hold mu.
func (c *Cache) evictDiskLocked() {
	for c.diskBytes > c.cfg.MaxDiskBytes && c.disk.Len() > 0 {
		oldest := c.disk.Back()
		ent := oldest.Value.(diskEntry)
		c.removeDiskLocked(oldest)
		os.Remove(c.path(ent.key))
		c.cfg.Obs.Add(obs.CacheEvictions, 1)
	}
}

// removeDiskLocked drops one disk-index element. Callers must hold mu.
func (c *Cache) removeDiskLocked(el *list.Element) {
	ent := el.Value.(diskEntry)
	c.disk.Remove(el)
	delete(c.diskIdx, ent.key)
	c.diskBytes -= ent.size
}

// path returns key's on-disk file name.
func (c *Cache) path(key string) string {
	return filepath.Join(c.cfg.Dir, key+fileSuffix)
}

// Len returns the number of in-memory entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mem.Len()
}

// DiskBytes returns the on-disk layer's indexed payload bytes.
func (c *Cache) DiskBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.diskBytes
}

// writeEntry atomically persists one framed value: temp file in the same
// directory, fsync, rename over the final name. A crash at any point leaves
// either the old entry or the new one, never a torn file under the live
// name (a stray temp file is skipped by the open scan).
func writeEntry(dir, path string, val []byte) error {
	tmp, err := os.CreateTemp(dir, "entry-*.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(val)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(val))
	if _, err := tmp.Write(fileMagic); err == nil {
		if _, err = tmp.Write(hdr[:]); err == nil {
			_, err = tmp.Write(val)
		}
	}
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// readEntry loads and verifies one framed value.
func readEntry(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < len(fileMagic)+8 || string(data[:len(fileMagic)]) != string(fileMagic) {
		return nil, fmt.Errorf("cache: %s: bad header", path)
	}
	body := data[len(fileMagic):]
	n := binary.LittleEndian.Uint32(body[0:])
	sum := binary.LittleEndian.Uint32(body[4:])
	if n > maxValueBytes || int(n) != len(body)-8 {
		return nil, fmt.Errorf("cache: %s: bad length", path)
	}
	val := body[8:]
	if crc32.ChecksumIEEE(val) != sum {
		return nil, fmt.Errorf("cache: %s: checksum mismatch", path)
	}
	return val, nil
}
