package cache

import "sync"

// Flight collapses concurrent identical submissions: the first submitter of
// a digest becomes the leader and registers its job ID; every later
// submitter of the same digest, for as long as the leader's job is in
// flight, is handed that ID and attaches to the existing job instead of
// enqueueing a duplicate. The service ends a flight when the job reaches a
// terminal state (successful results then come from the cache instead).
//
// It is deliberately an ID map rather than a result-bearing singleflight:
// the attached caller needs the live job — its stream, its progress, its
// cancellation — not just the eventual value.
type Flight struct {
	mu      sync.Mutex
	leaders map[string]string // digest -> in-flight job ID
}

// NewFlight returns an empty flight map.
func NewFlight() *Flight {
	return &Flight{leaders: make(map[string]string)}
}

// Begin registers id as the leader for key if none is in flight, returning
// (id, true). Otherwise it returns the current leader's ID and false.
func (f *Flight) Begin(key, id string) (leader string, isLeader bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if cur, ok := f.leaders[key]; ok {
		return cur, false
	}
	f.leaders[key] = id
	return id, true
}

// Leader returns the in-flight leader's ID for key, if any.
func (f *Flight) Leader(key string) (string, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	id, ok := f.leaders[key]
	return id, ok
}

// End releases key. Only the leader's owner calls it, once the job is
// terminal; releasing an unknown key is a no-op.
func (f *Flight) End(key string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.leaders, key)
}

// Len returns the number of in-flight keys.
func (f *Flight) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.leaders)
}
