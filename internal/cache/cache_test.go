package cache

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"mobic/internal/obs"
)

// key returns a distinct valid (lowercase hex) key per index.
func key(i int) string { return fmt.Sprintf("%064x", i+1) }

func TestMemoryHitAndMiss(t *testing.T) {
	c, err := Open(Config{MaxEntries: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key(0)); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(key(0), []byte("v0"))
	got, ok := c.Get(key(0))
	if !ok || string(got) != "v0" {
		t.Fatalf("Get = %q, %v; want v0, true", got, ok)
	}
}

func TestMemoryLRUEviction(t *testing.T) {
	c, err := Open(Config{MaxEntries: 2})
	if err != nil {
		t.Fatal(err)
	}
	c.Put(key(0), []byte("v0"))
	c.Put(key(1), []byte("v1"))
	// Touch key 0 so key 1 becomes the LRU victim.
	if _, ok := c.Get(key(0)); !ok {
		t.Fatal("lost key 0")
	}
	c.Put(key(2), []byte("v2"))
	if _, ok := c.Get(key(1)); ok {
		t.Fatal("key 1 should have been evicted")
	}
	if _, ok := c.Get(key(0)); !ok {
		t.Fatal("recently used key 0 evicted instead of LRU")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestRejectsBadKeysAndValues(t *testing.T) {
	c, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"", "UPPER", "has-dash", "xyz!", string(make([]byte, 200))} {
		c.Put(k, []byte("v"))
		if _, ok := c.Get(k); ok {
			t.Fatalf("invalid key %q was stored", k)
		}
	}
	c.Put(key(0), nil)
	if _, ok := c.Get(key(0)); ok {
		t.Fatal("empty value was stored")
	}
}

func TestDiskPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(Config{Dir: dir, MaxEntries: 4})
	if err != nil {
		t.Fatal(err)
	}
	val := bytes.Repeat([]byte("payload"), 100)
	c.Put(key(0), val)

	// A second cache over the same directory — a restarted daemon — serves
	// the value from disk.
	c2, err := Open(Config{Dir: dir, MaxEntries: 4})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c2.Get(key(0))
	if !ok || !bytes.Equal(got, val) {
		t.Fatalf("reopened cache: Get ok=%v len=%d, want len=%d", ok, len(got), len(val))
	}
	// The disk read promoted it into memory: a second Get must not touch disk.
	if err := os.Remove(filepath.Join(dir, key(0)+fileSuffix)); err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Get(key(0)); !ok {
		t.Fatal("promoted value lost after file removal")
	}
}

func TestDiskCorruptionDegradesToMiss(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	c.Put(key(0), []byte("good value"))
	path := filepath.Join(dir, key(0)+fileSuffix)

	// Flip a payload byte on disk, then reopen so memory starts cold.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	c2, err := Open(Config{Dir: dir, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Get(key(0)); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	// The bad file was quarantined (not deleted) so a rewrite starts clean
	// but the evidence survives for forensics.
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt file still in the lookup path: %v", err)
	}
	if _, err := os.Stat(path + corruptSuffix); err != nil {
		t.Fatalf("corrupt file not quarantined: %v", err)
	}
	if n := reg.Counter(obs.CacheCorrupt); n != 1 {
		t.Fatalf("CacheCorrupt = %d, want 1", n)
	}
	// The poisoned bytes can never be served again: a later Get is still a
	// miss, and a fresh Open does not index the quarantined file.
	if _, ok := c2.Get(key(0)); ok {
		t.Fatal("quarantined entry re-served")
	}
	c3, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if db := c3.DiskBytes(); db != 0 {
		t.Fatalf("quarantined file indexed on reopen: DiskBytes = %d", db)
	}
	if _, ok := c3.Get(key(0)); ok {
		t.Fatal("quarantined entry served after reopen")
	}
	// The slot itself still works: a fresh Put lands and reads back.
	c3.Put(key(0), []byte("fresh value"))
	if v, ok := c3.Get(key(0)); !ok || string(v) != "fresh value" {
		t.Fatalf("rewrite after quarantine failed: %q %v", v, ok)
	}
}

func TestDiskByteBoundEvictsOldest(t *testing.T) {
	dir := t.TempDir()
	val := bytes.Repeat([]byte("x"), 1000)
	c, err := Open(Config{Dir: dir, MaxDiskBytes: 3500, MaxEntries: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		c.Put(key(i), val)
	}
	if db := c.DiskBytes(); db > 3500 {
		t.Fatalf("DiskBytes = %d, want <= 3500", db)
	}
	// Oldest entries fell off; the newest survives (MaxEntries 1 keeps the
	// memory layer from masking disk behaviour).
	if _, ok := c.Get(key(0)); ok {
		t.Fatal("oldest entry survived the byte bound")
	}
	if _, ok := c.Get(key(4)); !ok {
		t.Fatal("newest entry evicted")
	}
}

func TestOpenSkipsForeignFiles(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"README.txt", "entry-123.tmp", "UPPER" + fileSuffix} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	c, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if db := c.DiskBytes(); db != 0 {
		t.Fatalf("foreign files indexed: DiskBytes = %d", db)
	}
}

func TestObsCounters(t *testing.T) {
	reg := obs.NewRegistry()
	c, err := Open(Config{MaxEntries: 1, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	c.Get(key(0)) // miss
	c.Put(key(0), []byte("v"))
	c.Get(key(0))              // hit
	c.Put(key(1), []byte("w")) // evicts key 0 (memory-only ⇒ counted)
	hits, misses, evs := reg.Counter(obs.CacheHits), reg.Counter(obs.CacheMisses), reg.Counter(obs.CacheEvictions)
	if misses != 1 || hits != 1 || evs != 1 {
		t.Fatalf("hits=%d misses=%d evictions=%d, want 1/1/1", hits, misses, evs)
	}
}

func TestFlightCollapse(t *testing.T) {
	f := NewFlight()
	leader, isLeader := f.Begin("d1", "job-a")
	if !isLeader || leader != "job-a" {
		t.Fatalf("first Begin = %q, %v; want job-a, true", leader, isLeader)
	}
	leader, isLeader = f.Begin("d1", "job-b")
	if isLeader || leader != "job-a" {
		t.Fatalf("second Begin = %q, %v; want job-a, false", leader, isLeader)
	}
	if id, ok := f.Leader("d1"); !ok || id != "job-a" {
		t.Fatalf("Leader = %q, %v", id, ok)
	}
	f.End("d1")
	if _, ok := f.Leader("d1"); ok {
		t.Fatal("flight survived End")
	}
	if _, isLeader := f.Begin("d1", "job-c"); !isLeader {
		t.Fatal("new leader not accepted after End")
	}
	f.End("unknown") // no-op
	if f.Len() != 1 {
		t.Fatalf("Len = %d, want 1", f.Len())
	}
}
