package sim

import (
	"hash/fnv"
	"math/rand/v2"
)

// Streams derives independent, named deterministic random streams from a
// single scenario seed. Each subsystem (node placement, per-node waypoint
// choices, hello jitter, packet loss, ...) pulls its own stream, so adding a
// random draw in one subsystem never perturbs another — a property the
// experiment harness relies on when comparing algorithms on identical
// scenarios.
type Streams struct {
	seed uint64
}

// NewStreams returns a stream factory rooted at the given seed.
func NewStreams(seed uint64) *Streams {
	return &Streams{seed: seed}
}

// Seed returns the root seed.
func (s *Streams) Seed() uint64 { return s.seed }

// Named returns the deterministic substream identified by name. Calling it
// twice with the same name returns two independent generators with identical
// sequences.
func (s *Streams) Named(name string) *rand.Rand {
	return rand.New(rand.NewPCG(s.seed, hashName(name)))
}

// NamedIndexed returns the deterministic substream identified by (name, i),
// e.g. one mobility stream per node.
func (s *Streams) NamedIndexed(name string, i int) *rand.Rand {
	return rand.New(rand.NewPCG(s.seed+uint64(i)*0x9e3779b97f4a7c15, hashName(name)))
}

func hashName(name string) uint64 {
	h := fnv.New64a()
	// fnv's Write never fails.
	_, _ = h.Write([]byte(name))
	return h.Sum64()
}
