// Package sim is the discrete-event simulation kernel underneath the MANET
// simulator. It provides a binary-heap event queue with a deterministic
// tie-break, a simulated clock, and named deterministic random-number
// substreams so that an entire scenario is reproducible from a single seed.
//
// The kernel plays the role ns-2's scheduler played for the paper's
// evaluation: hello broadcasts, neighbor timeouts and cluster-contention
// timers are all events on this queue.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
)

// Event is a scheduled callback. Fire runs at the event's timestamp with the
// scheduler's current time.
type Event struct {
	time     float64
	seq      uint64
	index    int // heap index, -1 once popped or canceled
	canceled bool
	fire     func(now float64)
}

// Time returns the simulated time at which the event is scheduled.
func (e *Event) Time() float64 { return e.time }

// Canceled reports whether the event has been canceled.
func (e *Event) Canceled() bool { return e.canceled }

// eventQueue implements heap.Interface ordered by (time, seq). The sequence
// number makes simultaneous events fire in scheduling order, which keeps runs
// bit-for-bit reproducible.
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev, ok := x.(*Event)
	if !ok {
		panic(fmt.Sprintf("sim: eventQueue.Push got %T, want *Event", x))
	}
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Scheduler owns the simulated clock and the pending event queue.
// It is not safe for concurrent use; the simulator is single-threaded by
// design (determinism beats parallelism for a 50-node scenario, and the
// experiment harness parallelizes across scenarios instead).
type Scheduler struct {
	now     float64
	queue   eventQueue
	nextSeq uint64
	fired   uint64
}

// NewScheduler returns a scheduler with the clock at zero.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// Now returns the current simulated time in seconds.
func (s *Scheduler) Now() float64 { return s.now }

// Pending returns the number of events currently queued (including canceled
// events not yet reaped).
func (s *Scheduler) Pending() int { return len(s.queue) }

// Fired returns the total number of events executed so far.
func (s *Scheduler) Fired() uint64 { return s.fired }

// ErrPastEvent is returned when an event is scheduled before the current
// simulated time.
var ErrPastEvent = errors.New("sim: event scheduled in the past")

// At schedules fire to run at absolute time t. Scheduling at the current
// time is allowed (the event runs after already-queued events at that time).
func (s *Scheduler) At(t float64, fire func(now float64)) (*Event, error) {
	if math.IsNaN(t) || t < s.now {
		return nil, fmt.Errorf("%w: t=%g now=%g", ErrPastEvent, t, s.now)
	}
	ev := &Event{time: t, seq: s.nextSeq, fire: fire}
	s.nextSeq++
	heap.Push(&s.queue, ev)
	return ev, nil
}

// After schedules fire to run delay seconds from now.
func (s *Scheduler) After(delay float64, fire func(now float64)) (*Event, error) {
	return s.At(s.now+delay, fire)
}

// Cancel marks ev so it will not fire. Canceling an already-fired or
// already-canceled event is a no-op. The event is dropped lazily when popped.
func (s *Scheduler) Cancel(ev *Event) {
	if ev == nil || ev.index == -1 {
		ev.markCanceled()
		return
	}
	ev.canceled = true
}

func (e *Event) markCanceled() {
	if e != nil {
		e.canceled = true
	}
}

// Step pops and fires the earliest pending event. It returns false when the
// queue is empty. Canceled events are skipped silently.
func (s *Scheduler) Step() bool {
	for len(s.queue) > 0 {
		evAny := heap.Pop(&s.queue)
		ev, ok := evAny.(*Event)
		if !ok {
			panic(fmt.Sprintf("sim: heap.Pop returned %T, want *Event", evAny))
		}
		if ev.canceled {
			continue
		}
		s.now = ev.time
		s.fired++
		ev.fire(s.now)
		return true
	}
	return false
}

// RunUntil fires events in order until the clock would pass horizon or the
// queue drains. Events scheduled exactly at the horizon still fire. The clock
// is left at min(horizon, time of last fired event) — i.e., it never exceeds
// the horizon.
func (s *Scheduler) RunUntil(horizon float64) {
	for len(s.queue) > 0 {
		// Peek: queue[0] is the earliest event.
		next := s.queue[0]
		if next.canceled {
			popped := heap.Pop(&s.queue)
			if ev, ok := popped.(*Event); ok {
				ev.index = -1
			}
			continue
		}
		if next.time > horizon {
			break
		}
		s.Step()
	}
	if s.now < horizon {
		s.now = horizon
	}
}

// Drain fires every remaining event regardless of time. Intended for tests.
func (s *Scheduler) Drain() {
	for s.Step() {
	}
}
