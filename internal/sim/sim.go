// Package sim is the discrete-event simulation kernel underneath the MANET
// simulator. It provides a binary-heap event queue with a deterministic
// tie-break, a simulated clock, and named deterministic random-number
// substreams so that an entire scenario is reproducible from a single seed.
//
// The kernel plays the role ns-2's scheduler played for the paper's
// evaluation: hello broadcasts, neighbor timeouts and cluster-contention
// timers are all events on this queue.
//
// The event API comes in three flavors, so the per-beacon hot path can run
// allocation-free:
//
//   - At/After allocate a fresh Event per call and hand it to the caller,
//     who may Cancel it later. Use for cold-path, one-shot scheduling.
//   - NewEvent + Reschedule bind a callback once and reuse the same Event
//     for every occurrence — the shape of a periodic tick or a pooled
//     object's timer. Zero allocations after the first.
//   - AtPooled/AfterPooled are fire-and-forget: no handle is returned, and
//     the Event is recycled through an internal free list once it fires.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"

	"mobic/internal/obs"
)

// Event is a scheduled callback. Fire runs at the event's timestamp with the
// scheduler's current time.
type Event struct {
	time float64
	seq  uint64
	// index is the heap position, -1 while not queued (fresh, fired,
	// canceled-and-reaped, or detached via NewEvent).
	index    int
	canceled bool
	fired    bool
	// pooled marks fire-and-forget events owned by the scheduler's free
	// list; they are recycled as soon as they leave the queue.
	pooled bool
	fire   func(now float64)
}

// Time returns the simulated time at which the event is scheduled.
func (e *Event) Time() float64 { return e.time }

// Canceled reports whether the event was canceled before it fired. An event
// that already ran reports false: fired and canceled are mutually exclusive
// (see Scheduler.Cancel).
func (e *Event) Canceled() bool { return e.canceled }

// Fired reports whether the event's callback has run (at least once; a
// rescheduled event reports false again while it is queued).
func (e *Event) Fired() bool { return e.fired }

// eventQueue implements heap.Interface ordered by (time, seq). The sequence
// number makes simultaneous events fire in scheduling order, which keeps runs
// bit-for-bit reproducible.
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev, ok := x.(*Event)
	if !ok {
		panic(fmt.Sprintf("sim: eventQueue.Push got %T, want *Event", x))
	}
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// reapMinCanceled is the floor below which canceled events are left to be
// dropped lazily on pop; compacting tiny queues is not worth the re-heapify.
const reapMinCanceled = 64

// Scheduler owns the simulated clock and the pending event queue.
// It is not safe for concurrent use; the simulator is single-threaded by
// design (determinism beats parallelism for a 50-node scenario, and the
// experiment harness parallelizes across scenarios instead).
type Scheduler struct {
	now     float64
	queue   eventQueue
	nextSeq uint64
	fired   uint64
	// free is the recycle list for pooled (fire-and-forget) events.
	free []*Event
	// canceledQueued counts canceled events still sitting in the queue;
	// past a threshold they are reaped eagerly instead of lazily on pop,
	// so cancel-heavy workloads don't bloat the heap.
	canceledQueued int
	// rec receives kernel telemetry (events fired/canceled/pooled, heap
	// depth). Never nil — obs.Nop by default — and never consulted for
	// anything that feeds back into scheduling, so instrumentation cannot
	// perturb determinism.
	rec obs.Recorder
}

// NewScheduler returns a scheduler with the clock at zero.
func NewScheduler() *Scheduler {
	return &Scheduler{rec: obs.Nop{}}
}

// SetRecorder installs the telemetry recorder (obs.Nop disables). Passing
// nil restores the no-op default.
func (s *Scheduler) SetRecorder(rec obs.Recorder) {
	if rec == nil {
		rec = obs.Nop{}
	}
	s.rec = rec
}

// Now returns the current simulated time in seconds.
func (s *Scheduler) Now() float64 { return s.now }

// Pending returns the number of events currently queued (including canceled
// events not yet reaped).
func (s *Scheduler) Pending() int { return len(s.queue) }

// Fired returns the total number of events executed so far.
func (s *Scheduler) Fired() uint64 { return s.fired }

// ErrPastEvent is returned when an event is scheduled before the current
// simulated time.
var ErrPastEvent = errors.New("sim: event scheduled in the past")

// ErrNilCallback is returned when an event is created without a callback.
var ErrNilCallback = errors.New("sim: event has no callback")

// At schedules fire to run at absolute time t. Scheduling at the current
// time is allowed (the event runs after already-queued events at that time).
func (s *Scheduler) At(t float64, fire func(now float64)) (*Event, error) {
	if math.IsNaN(t) || t < s.now {
		return nil, fmt.Errorf("%w: t=%g now=%g", ErrPastEvent, t, s.now)
	}
	ev := &Event{time: t, seq: s.nextSeq, fire: fire}
	s.nextSeq++
	heap.Push(&s.queue, ev)
	return ev, nil
}

// After schedules fire to run delay seconds from now.
func (s *Scheduler) After(delay float64, fire func(now float64)) (*Event, error) {
	return s.At(s.now+delay, fire)
}

// AtPooled schedules fire at absolute time t on an event drawn from the
// scheduler's free list. No handle is returned — the event cannot be
// canceled — and it is recycled as soon as it fires, so a steady stream of
// fire-and-forget events allocates nothing once the pool is warm. The
// callback itself is still per-call; pair with NewEvent/Reschedule when the
// closure too should be bound once.
func (s *Scheduler) AtPooled(t float64, fire func(now float64)) error {
	if math.IsNaN(t) || t < s.now {
		return fmt.Errorf("%w: t=%g now=%g", ErrPastEvent, t, s.now)
	}
	var ev *Event
	if n := len(s.free); n > 0 {
		ev = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		ev.canceled, ev.fired = false, false
	} else {
		ev = &Event{}
	}
	ev.time, ev.seq, ev.fire, ev.pooled = t, s.nextSeq, fire, true
	s.nextSeq++
	heap.Push(&s.queue, ev)
	return nil
}

// AfterPooled schedules fire delay seconds from now on a pooled event.
func (s *Scheduler) AfterPooled(delay float64, fire func(now float64)) error {
	return s.AtPooled(s.now+delay, fire)
}

// NewEvent returns a detached event with fire bound once. It is not queued;
// arm it with Reschedule. The caller owns the event and may reuse it for
// every occurrence of a periodic or pooled activity — the allocation-free
// alternative to calling After with a fresh closure each round.
func (s *Scheduler) NewEvent(fire func(now float64)) *Event {
	return &Event{index: -1, fire: fire}
}

// Reschedule queues ev to fire at absolute time t, reusing the callback
// bound at creation. It accepts an event in any non-queued state (fresh from
// NewEvent, already fired, or canceled) and also an event still in the
// queue, which is simply moved to its new time. Rescheduling clears the
// fired and canceled flags.
func (s *Scheduler) Reschedule(ev *Event, t float64) error {
	if ev == nil || ev.fire == nil {
		return ErrNilCallback
	}
	if math.IsNaN(t) || t < s.now {
		return fmt.Errorf("%w: t=%g now=%g", ErrPastEvent, t, s.now)
	}
	if ev.canceled && ev.index >= 0 {
		s.canceledQueued--
	}
	ev.canceled, ev.fired = false, false
	ev.time = t
	ev.seq = s.nextSeq
	s.nextSeq++
	if ev.index >= 0 {
		heap.Fix(&s.queue, ev.index)
		return nil
	}
	heap.Push(&s.queue, ev)
	return nil
}

// Cancel marks ev so it will not fire. Canceling an already-fired event is a
// no-op — the event keeps reporting Fired() true and Canceled() false, so
// the two outcomes stay distinguishable. Canceling an already-canceled event
// is likewise a no-op. Canceled events are dropped lazily when popped, or
// eagerly when enough of them accumulate in the queue.
func (s *Scheduler) Cancel(ev *Event) {
	if ev == nil || ev.canceled || ev.fired {
		return
	}
	ev.canceled = true
	s.rec.Add(obs.SimEventsCanceled, 1)
	if ev.index >= 0 {
		s.canceledQueued++
		s.maybeReap()
	}
}

// maybeReap compacts the queue when canceled events make up the majority of
// a non-trivial heap: they are filtered out in one pass and the heap is
// rebuilt, so cancel-heavy workloads (e.g. contention timers under churn)
// stay O(live events) instead of O(everything ever scheduled).
func (s *Scheduler) maybeReap() {
	if s.canceledQueued < reapMinCanceled || 2*s.canceledQueued < len(s.queue) {
		return
	}
	live := s.queue[:0]
	for _, ev := range s.queue {
		if ev.canceled {
			s.recycle(ev)
			continue
		}
		live = append(live, ev)
	}
	// Zero the tail so reaped events are not retained by the backing array.
	for i := len(live); i < len(s.queue); i++ {
		s.queue[i] = nil
	}
	s.queue = live
	for i, ev := range s.queue {
		ev.index = i
	}
	heap.Init(&s.queue)
	s.canceledQueued = 0
}

// recycle returns a no-longer-queued event to the free list if the
// scheduler owns it; caller-held events are left to the caller.
func (s *Scheduler) recycle(ev *Event) {
	ev.index = -1
	if !ev.pooled {
		return
	}
	ev.fire = nil // drop the closure so its captures are collectable
	s.free = append(s.free, ev)
	s.rec.Add(obs.SimEventsPooled, 1)
}

// Step pops and fires the earliest pending event. It returns false when the
// queue is empty. Canceled events are skipped silently.
func (s *Scheduler) Step() bool {
	for len(s.queue) > 0 {
		evAny := heap.Pop(&s.queue)
		ev, ok := evAny.(*Event)
		if !ok {
			panic(fmt.Sprintf("sim: heap.Pop returned %T, want *Event", evAny))
		}
		if ev.canceled {
			s.canceledQueued--
			s.recycle(ev)
			continue
		}
		s.now = ev.time
		s.fired++
		s.rec.Add(obs.SimEventsFired, 1)
		s.rec.Set(obs.SimHeapDepth, float64(len(s.queue)))
		// Mark fired before running so a Cancel from inside the callback
		// is correctly a no-op, and a Reschedule re-arms cleanly.
		ev.fired = true
		fire := ev.fire
		if ev.pooled {
			// Pooled events are recycled before the callback runs, so a
			// fire-and-forget chain (the callback posting the next pooled
			// event) reuses this very event instead of growing the pool.
			s.recycle(ev)
		}
		fire(s.now)
		return true
	}
	return false
}

// NextTime returns the timestamp of the earliest live pending event. ok is
// false when the queue holds nothing but canceled events (which are reaped as
// a side effect) or is empty. The tiled scheduler uses this to size and skip
// synchronization windows without firing anything.
func (s *Scheduler) NextTime() (t float64, ok bool) {
	for len(s.queue) > 0 {
		next := s.queue[0]
		if !next.canceled {
			return next.time, true
		}
		popped := heap.Pop(&s.queue)
		if ev, isEvent := popped.(*Event); isEvent {
			s.canceledQueued--
			s.recycle(ev)
		}
	}
	return 0, false
}

// RunUntil fires events in order until the clock would pass horizon or the
// queue drains. Events scheduled exactly at the horizon still fire. The clock
// is left at min(horizon, time of last fired event) — i.e., it never exceeds
// the horizon.
func (s *Scheduler) RunUntil(horizon float64) {
	for len(s.queue) > 0 {
		// Peek: queue[0] is the earliest event.
		next := s.queue[0]
		if next.canceled {
			popped := heap.Pop(&s.queue)
			if ev, ok := popped.(*Event); ok {
				s.canceledQueued--
				s.recycle(ev)
			}
			continue
		}
		if next.time > horizon {
			break
		}
		s.Step()
	}
	if s.now < horizon {
		s.now = horizon
	}
}

// Drain fires every remaining event regardless of time. Intended for tests.
func (s *Scheduler) Drain() {
	for s.Step() {
	}
}
