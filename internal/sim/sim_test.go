package sim

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func TestSchedulerFiresInTimeOrder(t *testing.T) {
	s := NewScheduler()
	var fired []float64
	for _, tm := range []float64{5, 1, 3, 2, 4} {
		tm := tm
		if _, err := s.At(tm, func(now float64) { fired = append(fired, now) }); err != nil {
			t.Fatal(err)
		}
	}
	s.Drain()
	if !sort.Float64sAreSorted(fired) {
		t.Errorf("events fired out of order: %v", fired)
	}
	if len(fired) != 5 {
		t.Errorf("fired %d events, want 5", len(fired))
	}
}

func TestSchedulerTieBreakIsFIFO(t *testing.T) {
	s := NewScheduler()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		if _, err := s.At(7, func(float64) { order = append(order, i) }); err != nil {
			t.Fatal(err)
		}
	}
	s.Drain()
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events fired out of scheduling order: %v", order)
		}
	}
}

func TestSchedulerRejectsPastEvents(t *testing.T) {
	s := NewScheduler()
	if _, err := s.At(10, func(float64) {}); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(10)
	if s.Now() != 10 {
		t.Fatalf("Now = %v, want 10", s.Now())
	}
	if _, err := s.At(5, func(float64) {}); err == nil {
		t.Error("scheduling in the past should error")
	}
	if _, err := s.At(math.NaN(), func(float64) {}); err == nil {
		t.Error("scheduling at NaN should error")
	}
	// Scheduling at exactly now is allowed.
	if _, err := s.At(10, func(float64) {}); err != nil {
		t.Errorf("scheduling at now should be allowed: %v", err)
	}
}

func TestAfter(t *testing.T) {
	s := NewScheduler()
	var at float64 = -1
	if _, err := s.After(2.5, func(now float64) { at = now }); err != nil {
		t.Fatal(err)
	}
	s.Drain()
	if at != 2.5 {
		t.Errorf("After fired at %v, want 2.5", at)
	}
}

func TestCancel(t *testing.T) {
	s := NewScheduler()
	fired := false
	ev, err := s.At(1, func(float64) { fired = true })
	if err != nil {
		t.Fatal(err)
	}
	s.Cancel(ev)
	s.Drain()
	if fired {
		t.Error("canceled event fired")
	}
	if !ev.Canceled() {
		t.Error("event should report canceled")
	}
	// Double-cancel is a no-op.
	s.Cancel(ev)
}

func TestRunUntilHorizon(t *testing.T) {
	s := NewScheduler()
	var fired []float64
	for _, tm := range []float64{1, 2, 3, 4, 5} {
		if _, err := s.At(tm, func(now float64) { fired = append(fired, now) }); err != nil {
			t.Fatal(err)
		}
	}
	s.RunUntil(3)
	if len(fired) != 3 {
		t.Errorf("fired %d events by horizon 3, want 3 (inclusive)", len(fired))
	}
	if s.Now() != 3 {
		t.Errorf("clock = %v, want 3", s.Now())
	}
	s.RunUntil(10)
	if len(fired) != 5 {
		t.Errorf("fired %d total, want 5", len(fired))
	}
	if s.Now() != 10 {
		t.Errorf("clock should advance to horizon even past last event, got %v", s.Now())
	}
}

func TestRunUntilSkipsCanceledHead(t *testing.T) {
	s := NewScheduler()
	ev, err := s.At(1, func(float64) { t.Error("canceled head fired") })
	if err != nil {
		t.Fatal(err)
	}
	fired := false
	if _, err := s.At(2, func(float64) { fired = true }); err != nil {
		t.Fatal(err)
	}
	s.Cancel(ev)
	s.RunUntil(5)
	if !fired {
		t.Error("live event after canceled head did not fire")
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	s := NewScheduler()
	count := 0
	var tick func(now float64)
	tick = func(now float64) {
		count++
		if count < 5 {
			if _, err := s.After(1, tick); err != nil {
				t.Errorf("reschedule failed: %v", err)
			}
		}
	}
	if _, err := s.At(0, tick); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(100)
	if count != 5 {
		t.Errorf("self-rescheduling chain fired %d times, want 5", count)
	}
	if s.Fired() != 5 {
		t.Errorf("Fired = %d, want 5", s.Fired())
	}
}

func TestPending(t *testing.T) {
	s := NewScheduler()
	if s.Pending() != 0 {
		t.Error("fresh scheduler should have no pending events")
	}
	if _, err := s.At(1, func(float64) {}); err != nil {
		t.Fatal(err)
	}
	if s.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", s.Pending())
	}
}

// Property: random scheduling orders always fire sorted by time.
func TestSchedulerOrderProperty(t *testing.T) {
	ordered := func(times []uint16) bool {
		s := NewScheduler()
		var fired []float64
		for _, raw := range times {
			tm := float64(raw) / 10
			if _, err := s.At(tm, func(now float64) { fired = append(fired, now) }); err != nil {
				return false
			}
		}
		s.Drain()
		return sort.Float64sAreSorted(fired) && len(fired) == len(times)
	}
	if err := quick.Check(ordered, nil); err != nil {
		t.Error(err)
	}
}

func TestStreamsDeterminism(t *testing.T) {
	a := NewStreams(42).Named("jitter")
	b := NewStreams(42).Named("jitter")
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed+name should give identical sequences")
		}
	}
}

func TestStreamsIndependence(t *testing.T) {
	s := NewStreams(42)
	a, b := s.Named("jitter"), s.Named("loss")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("streams with different names look correlated: %d/100 equal draws", same)
	}
}

func TestStreamsSeedSensitivity(t *testing.T) {
	a := NewStreams(1).Named("x")
	b := NewStreams(2).Named("x")
	if a.Float64() == b.Float64() && a.Float64() == b.Float64() {
		t.Error("different seeds should diverge")
	}
	if NewStreams(7).Seed() != 7 {
		t.Error("Seed accessor mismatch")
	}
}

func TestNamedIndexedDistinctPerIndex(t *testing.T) {
	s := NewStreams(42)
	seen := make(map[float64]bool)
	for i := 0; i < 50; i++ {
		v := s.NamedIndexed("mobility", i).Float64()
		if seen[v] {
			t.Fatalf("index %d produced duplicate first draw", i)
		}
		seen[v] = true
	}
}

func TestNamedIndexedReproducible(t *testing.T) {
	draw := func(seed uint64, i int) float64 {
		return NewStreams(seed).NamedIndexed("m", i).Float64()
	}
	if draw(9, 3) != draw(9, 3) {
		t.Error("NamedIndexed not reproducible")
	}
}

var sinkFloat float64

func BenchmarkSchedulerChurn(b *testing.B) {
	s := NewScheduler()
	rng := rand.New(rand.NewPCG(1, 2))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.After(rng.Float64(), func(now float64) { sinkFloat = now }); err != nil {
			b.Fatal(err)
		}
		if i%4 == 3 {
			s.Step()
		}
	}
	s.Drain()
}

func TestNextTimePeeksWithoutFiring(t *testing.T) {
	s := NewScheduler()
	if _, ok := s.NextTime(); ok {
		t.Fatal("empty scheduler reported a pending event")
	}
	fired := 0
	ev, err := s.At(5, func(float64) { fired++ })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.At(2, func(float64) { fired++ }); err != nil {
		t.Fatal(err)
	}
	if tm, ok := s.NextTime(); !ok || tm != 2 {
		t.Fatalf("NextTime = (%g, %v), want (2, true)", tm, ok)
	}
	if fired != 0 || s.Now() != 0 {
		t.Fatalf("peek fired %d events / moved clock to %g", fired, s.Now())
	}
	// Canceled head events are skipped (and reaped) by the peek.
	s.RunUntil(2)
	s.Cancel(ev)
	if _, ok := s.NextTime(); ok {
		t.Fatal("NextTime saw only-canceled queue as live")
	}
	if s.Pending() != 0 {
		t.Fatalf("peek left %d canceled events queued", s.Pending())
	}
}
