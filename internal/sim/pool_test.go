package sim

import (
	"errors"
	"testing"
)

// TestFiredVsCanceledDistinct pins the contract that firing and cancellation
// are mutually exclusive outcomes: canceling an event that already ran is a
// no-op, and the event keeps reporting Fired. Before this contract existed,
// Cancel on a fired event flipped Canceled() to true, making the handle lie
// about what actually happened.
func TestFiredVsCanceledDistinct(t *testing.T) {
	s := NewScheduler()
	fired := 0
	ev, err := s.At(1, func(float64) { fired++ })
	if err != nil {
		t.Fatal(err)
	}
	if ev.Fired() || ev.Canceled() {
		t.Fatal("fresh event should be neither fired nor canceled")
	}
	s.Drain()
	if fired != 1 {
		t.Fatalf("event fired %d times, want 1", fired)
	}
	if !ev.Fired() || ev.Canceled() {
		t.Fatalf("after firing: Fired=%v Canceled=%v, want true/false", ev.Fired(), ev.Canceled())
	}
	// Cancel after the fact must not rewrite history.
	s.Cancel(ev)
	if !ev.Fired() || ev.Canceled() {
		t.Errorf("after late Cancel: Fired=%v Canceled=%v, want true/false", ev.Fired(), ev.Canceled())
	}

	// The converse: a canceled event never fires and never reports Fired.
	ev2, err := s.After(1, func(float64) { t.Error("canceled event fired") })
	if err != nil {
		t.Fatal(err)
	}
	s.Cancel(ev2)
	s.Drain()
	if ev2.Fired() || !ev2.Canceled() {
		t.Errorf("after cancel: Fired=%v Canceled=%v, want false/true", ev2.Fired(), ev2.Canceled())
	}
}

// TestCancelInsideOwnCallback: by the time the callback runs the event is
// fired, so a self-cancel from inside it must be a no-op.
func TestCancelInsideOwnCallback(t *testing.T) {
	s := NewScheduler()
	var ev *Event
	var err error
	ev, err = s.At(1, func(float64) { s.Cancel(ev) })
	if err != nil {
		t.Fatal(err)
	}
	s.Drain()
	if !ev.Fired() || ev.Canceled() {
		t.Errorf("self-cancel rewrote state: Fired=%v Canceled=%v", ev.Fired(), ev.Canceled())
	}
}

// TestReschedulePeriodic drives one persistent event through the periodic
// pattern the hello protocol uses: bind the callback once, re-arm from inside
// it every round.
func TestReschedulePeriodic(t *testing.T) {
	s := NewScheduler()
	var times []float64
	var ev *Event
	ev = s.NewEvent(func(now float64) {
		times = append(times, now)
		if len(times) < 4 {
			if err := s.Reschedule(ev, now+2); err != nil {
				t.Errorf("re-arm failed: %v", err)
			}
		}
	})
	if ev.Fired() || ev.Canceled() {
		t.Fatal("detached event should be neither fired nor canceled")
	}
	if err := s.Reschedule(ev, 1); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(100)
	want := []float64{1, 3, 5, 7}
	if len(times) != len(want) {
		t.Fatalf("fired at %v, want %v", times, want)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("fired at %v, want %v", times, want)
		}
	}
	if s.Pending() != 0 {
		t.Errorf("Pending = %d after chain ended, want 0", s.Pending())
	}
}

// TestRescheduleMovesQueuedEvent: rescheduling an event still in the queue
// moves it instead of queueing a duplicate — the fix for the doubled beacon
// chain when a node recovered while its stale tick was still pending.
func TestRescheduleMovesQueuedEvent(t *testing.T) {
	s := NewScheduler()
	fired := 0
	ev := s.NewEvent(func(float64) { fired++ })
	if err := s.Reschedule(ev, 10); err != nil {
		t.Fatal(err)
	}
	if err := s.Reschedule(ev, 2); err != nil {
		t.Fatal(err)
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d after moving a queued event, want 1", s.Pending())
	}
	s.RunUntil(1)
	if fired != 0 {
		t.Fatal("event fired before its moved time")
	}
	s.RunUntil(100)
	if fired != 1 {
		t.Errorf("event fired %d times, want exactly 1", fired)
	}
}

// TestRescheduleRevivesCanceledEvent: Reschedule clears a cancellation,
// whether the canceled event is still queued or already reaped.
func TestRescheduleRevivesCanceledEvent(t *testing.T) {
	s := NewScheduler()
	fired := 0
	ev := s.NewEvent(func(float64) { fired++ })
	if err := s.Reschedule(ev, 1); err != nil {
		t.Fatal(err)
	}
	s.Cancel(ev)
	if err := s.Reschedule(ev, 2); err != nil {
		t.Fatal(err)
	}
	if ev.Canceled() {
		t.Error("reschedule should clear the canceled flag")
	}
	if s.canceledQueued != 0 {
		t.Errorf("canceledQueued = %d after reviving, want 0", s.canceledQueued)
	}
	s.Drain()
	if fired != 1 {
		t.Errorf("revived event fired %d times, want 1", fired)
	}
}

// TestRescheduleErrors: no callback, past times and NaN are rejected.
func TestRescheduleErrors(t *testing.T) {
	s := NewScheduler()
	if err := s.Reschedule(nil, 1); !errors.Is(err, ErrNilCallback) {
		t.Errorf("nil event: err = %v, want ErrNilCallback", err)
	}
	ev := s.NewEvent(func(float64) {})
	if _, err := s.At(5, func(float64) {}); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(5)
	if err := s.Reschedule(ev, 4); !errors.Is(err, ErrPastEvent) {
		t.Errorf("past reschedule: err = %v, want ErrPastEvent", err)
	}
}

// TestPooledEventsRecycle: a fire-and-forget chain through AtPooled reuses
// the same Event object instead of growing the heap or the pool.
func TestPooledEventsRecycle(t *testing.T) {
	s := NewScheduler()
	count := 0
	var chain func(now float64)
	chain = func(now float64) {
		count++
		if count < 100 {
			if err := s.AfterPooled(1, chain); err != nil {
				t.Errorf("pooled re-arm failed: %v", err)
			}
		}
	}
	if err := s.AtPooled(0, chain); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(1000)
	if count != 100 {
		t.Fatalf("chain fired %d times, want 100", count)
	}
	// The whole chain should have cycled through a single pooled event.
	if len(s.free) != 1 {
		t.Errorf("free list holds %d events after a serial chain, want 1", len(s.free))
	}
	// The recycled event must not retain its last closure.
	if s.free[0].fire != nil {
		t.Error("recycled event still holds its callback")
	}
}

// TestPooledRejectsPast mirrors the At contract for the pooled variants.
func TestPooledRejectsPast(t *testing.T) {
	s := NewScheduler()
	if _, err := s.At(3, func(float64) {}); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(3)
	if err := s.AtPooled(2, func(float64) {}); !errors.Is(err, ErrPastEvent) {
		t.Errorf("past AtPooled: err = %v, want ErrPastEvent", err)
	}
	if len(s.free) != 0 {
		t.Errorf("failed AtPooled leaked %d events into the free list", len(s.free))
	}
}

// TestEagerReapCompactsQueue: once canceled events dominate a non-trivial
// queue they are reaped immediately rather than lingering until popped.
func TestEagerReapCompactsQueue(t *testing.T) {
	s := NewScheduler()
	events := make([]*Event, 0, 200)
	for i := 0; i < 200; i++ {
		ev, err := s.At(float64(i+1), func(float64) {})
		if err != nil {
			t.Fatal(err)
		}
		events = append(events, ev)
	}
	// Cancel three quarters. The reap triggers as soon as canceled events
	// reach both the absolute floor and a majority of the queue — at the
	// 100th cancel here — so the queue must shrink well below the 200
	// scheduled even while 50 late cancels (below the floor) stay lazy.
	for i := 0; i < 150; i++ {
		s.Cancel(events[i])
	}
	if s.Pending() != 100 {
		t.Errorf("Pending = %d after eager reap, want 100 (50 live + 50 sub-floor canceled)", s.Pending())
	}
	if s.canceledQueued != 50 {
		t.Errorf("canceledQueued = %d, want 50 still awaiting lazy drop", s.canceledQueued)
	}
	// The survivors must still fire in order.
	s.Drain()
	if got := s.Fired(); got != 50 {
		t.Errorf("Fired = %d, want 50", got)
	}
}

// TestReapBelowThresholdIsLazy: small queues are not compacted; canceled
// events wait to be dropped on pop.
func TestReapBelowThresholdIsLazy(t *testing.T) {
	s := NewScheduler()
	events := make([]*Event, 0, 20)
	for i := 0; i < 20; i++ {
		ev, err := s.At(float64(i+1), func(float64) {})
		if err != nil {
			t.Fatal(err)
		}
		events = append(events, ev)
	}
	for i := 0; i < 15; i++ {
		s.Cancel(events[i])
	}
	if s.Pending() != 20 {
		t.Errorf("Pending = %d, want 20 (lazy below the reap floor)", s.Pending())
	}
	s.Drain()
	if got := s.Fired(); got != 5 {
		t.Errorf("Fired = %d, want 5", got)
	}
}

// TestRescheduleAllocFree: the steady-state periodic pattern — one persistent
// event re-armed every round — performs no allocations.
func TestRescheduleAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counting is unreliable under the race detector")
	}
	s := NewScheduler()
	ev := s.NewEvent(func(now float64) {})
	if err := s.Reschedule(ev, 1); err != nil {
		t.Fatal(err)
	}
	s.Drain()
	allocs := testing.AllocsPerRun(1000, func() {
		if err := s.Reschedule(ev, s.Now()+1); err != nil {
			t.Fatal(err)
		}
		s.Step()
	})
	if allocs != 0 {
		t.Errorf("reschedule cycle allocates %.1f objects per round, want 0", allocs)
	}
}

// BenchmarkSchedulerReschedule measures the persistent-event periodic cycle
// that replaced the closure-per-beacon pattern on the simulator hot path.
func BenchmarkSchedulerReschedule(b *testing.B) {
	s := NewScheduler()
	ev := s.NewEvent(func(now float64) { sinkFloat = now })
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := s.Reschedule(ev, s.Now()+1); err != nil {
			b.Fatal(err)
		}
		s.Step()
	}
}
