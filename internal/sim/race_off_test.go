//go:build !race

package sim

// raceEnabled lets allocation-counting tests skip under the race detector,
// whose instrumentation allocates behind the scenes.
const raceEnabled = false
