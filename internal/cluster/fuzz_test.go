package cluster

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// The engine must maintain its state invariants under ANY sequence of
// neighbor snapshots — including inconsistent, stale, or adversarial ones
// (lossy channels deliver exactly those):
//
//   - the role is always one of the three defined values,
//   - a head is always its own head,
//   - a member always has a head that is not itself,
//   - an undecided node never has a head.
func checkInvariants(t *testing.T, n *Node) {
	t.Helper()
	switch n.Role() {
	case RoleHead:
		if n.Head() != n.ID() {
			t.Fatalf("head %d affiliated to %d", n.ID(), n.Head())
		}
	case RoleMember:
		if n.Head() == NoHead || n.Head() == n.ID() {
			t.Fatalf("member %d has head %d", n.ID(), n.Head())
		}
	case RoleUndecided:
		if n.Head() != NoHead {
			t.Fatalf("undecided %d has head %d", n.ID(), n.Head())
		}
	default:
		t.Fatalf("invalid role %v", n.Role())
	}
}

func randomSnapshot(rng *rand.Rand, selfID int32) []NeighborView {
	count := rng.IntN(8)
	views := make([]NeighborView, 0, count)
	used := map[int32]bool{selfID: true}
	for len(views) < count {
		id := int32(rng.IntN(20))
		if used[id] {
			continue
		}
		used[id] = true
		role := Role(1 + rng.IntN(3))
		head := NoHead
		switch role {
		case RoleHead:
			head = id
		case RoleMember:
			head = int32(rng.IntN(20))
		}
		views = append(views, NeighborView{
			ID:     id,
			Weight: Weight{Value: float64(rng.IntN(10)), ID: id},
			Role:   role,
			Head:   head,
		})
	}
	return views
}

func TestEngineInvariantsUnderRandomSnapshots(t *testing.T) {
	for _, policy := range []Policy{
		{LCC: true},
		{LCC: true, CCI: 4},
		{LCC: false},
	} {
		policy := policy
		prop := func(seed uint64) bool {
			rng := rand.New(rand.NewPCG(seed, 77))
			n := NewNode(5, policy)
			for step := 0; step < 60; step++ {
				now := float64(step) * 2
				w := Weight{Value: float64(rng.IntN(10)), ID: 5}
				n.Step(now, w, randomSnapshot(rng, 5))
				checkInvariants(t, n)
			}
			return true
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
			t.Errorf("policy %+v: %v", policy, err)
		}
	}
}

// Hooks must observe every transition consistently: replaying the hook
// stream must reconstruct the node's final state.
func TestHookStreamReconstructsState(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 78))
		n := NewNode(3, Policy{LCC: true, CCI: 2})
		role := n.Role()
		head := n.Head()
		n.OnRoleChange(func(_ float64, old, newRole Role) {
			if old != role {
				t.Fatalf("role hook: old %v, tracked %v", old, role)
			}
			role = newRole
		})
		n.OnHeadChange(func(_ float64, oldHead, newHead int32) {
			if oldHead != head {
				t.Fatalf("head hook: old %d, tracked %d", oldHead, head)
			}
			head = newHead
		})
		for step := 0; step < 40; step++ {
			n.Step(float64(step)*2, Weight{Value: float64(rng.IntN(5)), ID: 3}, randomSnapshot(rng, 3))
		}
		return role == n.Role() && head == n.Head()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Two heads whose advertised weights drift can momentarily both demote (a
// real distributed race). The engine must recover: with stable weights and
// a stable topology, a two-node system always converges to one head and
// one member.
func TestSymmetricContentionRecovers(t *testing.T) {
	a := NewNode(1, Policy{LCC: true, CCI: 0})
	b := NewNode(2, Policy{LCC: true, CCI: 0})
	// Both become singleton heads apart from each other.
	a.Step(0, Weight{Value: 5, ID: 1}, nil)
	b.Step(0, Weight{Value: 5, ID: 2}, nil)

	// They meet. Run beacons with a one-round information lag and
	// crossing weights for a few rounds, then let weights settle.
	wA, wB := 5.0, 6.0
	for round := 1; round <= 12; round++ {
		now := float64(round) * 2
		if round < 4 {
			wA, wB = wB, wA // jittering metric values
		} else {
			wA, wB = 3, 7 // settle: A should win
		}
		advA := NeighborView{ID: 1, Weight: a.Weight(), Role: a.Role(), Head: a.Head()}
		advB := NeighborView{ID: 2, Weight: b.Weight(), Role: b.Role(), Head: b.Head()}
		a.Step(now, Weight{Value: wA, ID: 1}, []NeighborView{advB})
		b.Step(now, Weight{Value: wB, ID: 2}, []NeighborView{advA})
		checkInvariants(t, a)
		checkInvariants(t, b)
	}
	heads := 0
	if a.Role() == RoleHead {
		heads++
	}
	if b.Role() == RoleHead {
		heads++
	}
	if heads != 1 {
		t.Errorf("system did not converge to one head: a=%v b=%v", a.Role(), b.Role())
	}
	if a.Role() != RoleHead {
		t.Errorf("lower-weight node should hold the head role, got a=%v", a.Role())
	}
}
