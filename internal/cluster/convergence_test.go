package cluster

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"mobic/internal/geom"
)

// roundRunner executes the distributed algorithm synchronously on a static
// geometric topology: each round every node sees the state its neighbors
// advertised at the end of the previous round (one-beacon information lag,
// like the hello protocol).
type roundRunner struct {
	nodes   []*Node
	weights []Weight // static per-node weights (value part)
	pos     []geom.Point
	radius  float64
}

func newRoundRunner(policy Policy, pos []geom.Point, values []float64, radius float64) *roundRunner {
	r := &roundRunner{
		pos:    pos,
		radius: radius,
	}
	for i := range pos {
		id := int32(i)
		r.nodes = append(r.nodes, NewNode(id, policy))
		r.weights = append(r.weights, Weight{Value: values[i], ID: id})
	}
	return r
}

type advertised struct {
	w    Weight
	role Role
	head int32
}

func (r *roundRunner) snapshot() []advertised {
	out := make([]advertised, len(r.nodes))
	for i, n := range r.nodes {
		out[i] = advertised{w: n.Weight(), role: n.Role(), head: n.Head()}
	}
	return out
}

func (r *roundRunner) neighborsOf(i int, advs []advertised) []NeighborView {
	var views []NeighborView
	for j := range r.nodes {
		if j == i {
			continue
		}
		if r.pos[i].Dist(r.pos[j]) <= r.radius {
			views = append(views, NeighborView{
				ID:     int32(j),
				Weight: advs[j].w,
				Role:   advs[j].role,
				Head:   advs[j].head,
			})
		}
	}
	return views
}

// run executes rounds until no node changes state for one full round, or
// maxRounds is hit. It returns the number of rounds executed and whether the
// system converged.
func (r *roundRunner) run(maxRounds int) (int, bool) {
	for round := 0; round < maxRounds; round++ {
		advs := r.snapshot()
		changed := false
		for i, n := range r.nodes {
			beforeRole, beforeHead := n.Role(), n.Head()
			n.Step(float64(round), r.weights[i], r.neighborsOf(i, advs))
			if n.Role() != beforeRole || n.Head() != beforeHead {
				changed = true
			}
		}
		if !changed && round > 0 {
			return round + 1, true
		}
	}
	return maxRounds, false
}

// checkTheorem1 verifies the paper's Theorem 1 on a converged static system:
// no two clusterheads in range of each other, every node decided, every
// member adjacent to its head (hence cluster diameter <= 2 hops).
func (r *roundRunner) checkTheorem1(t *testing.T) {
	t.Helper()
	for i, n := range r.nodes {
		switch n.Role() {
		case RoleUndecided:
			t.Errorf("node %d still undecided after convergence", i)
		case RoleHead:
			for j, m := range r.nodes {
				if i == j || m.Role() != RoleHead {
					continue
				}
				if r.pos[i].Dist(r.pos[j]) <= r.radius {
					t.Errorf("heads %d and %d are in range (violates Theorem 1)", i, j)
				}
			}
			if n.Head() != n.ID() {
				t.Errorf("head %d should be its own head, got %d", i, n.Head())
			}
		case RoleMember:
			h := n.Head()
			if h < 0 || int(h) >= len(r.nodes) {
				t.Errorf("member %d has invalid head %d", i, h)
				continue
			}
			if r.nodes[h].Role() != RoleHead {
				t.Errorf("member %d's head %d is not a head", i, h)
			}
			if r.pos[i].Dist(r.pos[h]) > r.radius {
				t.Errorf("member %d is out of range of its head %d", i, h)
			}
		}
	}
}

func randomPositions(rng *rand.Rand, n int, side float64) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64() * side, Y: rng.Float64() * side}
	}
	return pts
}

func idValues(n int) []float64 {
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(i)
	}
	return vals
}

func TestLCCConvergesAndSatisfiesTheorem1(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	for trial := 0; trial < 20; trial++ {
		pos := randomPositions(rng, 50, 670)
		r := newRoundRunner(LCC.Policy, pos, idValues(50), 200)
		rounds, ok := r.run(100)
		if !ok {
			t.Fatalf("trial %d: LCC did not converge in 100 rounds", trial)
		}
		if rounds > 30 {
			t.Errorf("trial %d: convergence took %d rounds, expected O(diameter)", trial, rounds)
		}
		r.checkTheorem1(t)
	}
}

func TestGreedyLowestIDConvergesOnStaticTopology(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	for trial := 0; trial < 20; trial++ {
		pos := randomPositions(rng, 50, 670)
		r := newRoundRunner(LowestID.Policy, pos, idValues(50), 200)
		if _, ok := r.run(100); !ok {
			t.Fatalf("trial %d: greedy Lowest-ID did not converge on static topology", trial)
		}
		r.checkTheorem1(t)
	}
}

func TestDCACustomWeightsSatisfyTheorem1(t *testing.T) {
	// Theorem 1 cites [2]: any totally ordered weights converge to the
	// same structural properties. Use random distinct weights.
	rng := rand.New(rand.NewPCG(3, 3))
	for trial := 0; trial < 20; trial++ {
		pos := randomPositions(rng, 40, 500)
		vals := make([]float64, 40)
		for i := range vals {
			vals[i] = rng.Float64() * 100
		}
		r := newRoundRunner(DCA.Policy, pos, vals, 150)
		if _, ok := r.run(100); !ok {
			t.Fatalf("trial %d: DCA did not converge", trial)
		}
		r.checkTheorem1(t)
	}
}

func TestMOBICStaticWeightsSatisfyTheorem1(t *testing.T) {
	// MOBIC with frozen M values (static topology => M would settle to 0;
	// use distinct synthetic M values to exercise the mobility ordering).
	rng := rand.New(rand.NewPCG(4, 4))
	for trial := 0; trial < 10; trial++ {
		pos := randomPositions(rng, 50, 670)
		vals := make([]float64, 50)
		for i := range vals {
			vals[i] = rng.Float64() * 50
		}
		r := newRoundRunner(MOBIC.Policy, pos, vals, 250)
		// CCI defers head-head resolution; static topologies have no
		// head-head contact after formation, so convergence is unaffected.
		if _, ok := r.run(100); !ok {
			t.Fatalf("trial %d: MOBIC did not converge", trial)
		}
		r.checkTheorem1(t)
	}
}

func TestIsolatedNodesFormSingletonClusters(t *testing.T) {
	// Nodes far apart: everyone becomes a singleton head.
	pos := []geom.Point{{X: 0, Y: 0}, {X: 1000, Y: 0}, {X: 0, Y: 1000}}
	r := newRoundRunner(LCC.Policy, pos, idValues(3), 50)
	if _, ok := r.run(10); !ok {
		t.Fatal("did not converge")
	}
	for i, n := range r.nodes {
		if n.Role() != RoleHead {
			t.Errorf("isolated node %d role = %v, want head", i, n.Role())
		}
	}
}

func TestCliqueElectsSingleHead(t *testing.T) {
	// All nodes mutually in range: exactly one head (the best weight),
	// everyone else members of it.
	pos := make([]geom.Point, 10)
	for i := range pos {
		pos[i] = geom.Point{X: float64(i), Y: 0}
	}
	r := newRoundRunner(LCC.Policy, pos, idValues(10), 100)
	if _, ok := r.run(20); !ok {
		t.Fatal("did not converge")
	}
	if r.nodes[0].Role() != RoleHead {
		t.Errorf("node 0 should head the clique, role=%v", r.nodes[0].Role())
	}
	for i := 1; i < 10; i++ {
		if r.nodes[i].Role() != RoleMember || r.nodes[i].Head() != 0 {
			t.Errorf("node %d: role=%v head=%d, want member of 0", i, r.nodes[i].Role(), r.nodes[i].Head())
		}
	}
}

// Property: Theorem 1 holds for arbitrary random geometric graphs under LCC.
func TestTheorem1Property(t *testing.T) {
	prop := func(seed uint64, radiusSeed uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 17))
		n := 20 + int(seed%30)
		pos := randomPositions(rng, n, 670)
		radius := 60 + float64(radiusSeed)
		r := newRoundRunner(LCC.Policy, pos, idValues(n), radius)
		if _, ok := r.run(100); !ok {
			return false
		}
		// Inline re-implementation of checkTheorem1 returning bool.
		for i, nd := range r.nodes {
			switch nd.Role() {
			case RoleUndecided:
				return false
			case RoleHead:
				for j, m := range r.nodes {
					if i != j && m.Role() == RoleHead && r.pos[i].Dist(r.pos[j]) <= radius {
						return false
					}
				}
			case RoleMember:
				h := nd.Head()
				if h < 0 || int(h) >= n || r.nodes[h].Role() != RoleHead ||
					r.pos[i].Dist(r.pos[h]) > radius {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
