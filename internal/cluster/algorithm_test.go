package cluster

import (
	"errors"
	"testing"
)

func TestByName(t *testing.T) {
	tests := []struct {
		in       string
		wantName string
		wantErr  bool
	}{
		{in: "lowest-id", wantName: "lowest-id"},
		{in: "lcc", wantName: "lcc"},
		{in: "mobic", wantName: "mobic"},
		{in: "", wantName: "mobic"},
		{in: "max-degree", wantName: "max-degree"},
		{in: "dca", wantName: "dca"},
		{in: "mobic-history", wantName: "mobic-history"},
		{in: "mobic-nocci", wantName: "mobic-nocci"},
		{in: "mobic-oracle", wantName: "mobic-oracle"},
		{in: "kmeans", wantErr: true},
	}
	for _, tt := range tests {
		got, err := ByName(tt.in)
		if tt.wantErr {
			if err == nil {
				t.Errorf("ByName(%q) should error", tt.in)
			}
			if !errors.Is(err, ErrUnknownAlgorithm) {
				t.Errorf("ByName(%q) error should wrap ErrUnknownAlgorithm", tt.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ByName(%q): %v", tt.in, err)
			continue
		}
		if got.Name != tt.wantName {
			t.Errorf("ByName(%q).Name = %q, want %q", tt.in, got.Name, tt.wantName)
		}
	}
}

func TestAlgorithmDefinitions(t *testing.T) {
	if !MOBIC.Policy.LCC || MOBIC.Policy.CCI != DefaultCCI {
		t.Errorf("MOBIC policy = %+v, want LCC with CCI=%v", MOBIC.Policy, DefaultCCI)
	}
	if MOBIC.WeightKind != KindMobility {
		t.Error("MOBIC must use the mobility weight")
	}
	if !LCC.Policy.LCC || LCC.Policy.CCI != 0 {
		t.Errorf("LCC policy = %+v, want LCC without CCI", LCC.Policy)
	}
	if LCC.WeightKind != KindID || LowestID.WeightKind != KindID {
		t.Error("ID algorithms must use the ID weight")
	}
	if LowestID.Policy.LCC {
		t.Error("LowestID must not use LCC suppression")
	}
	if MaxConnectivity.WeightKind != KindDegree {
		t.Error("max-connectivity must use the degree weight")
	}
	if DCA.WeightKind != KindCustom {
		t.Error("DCA must use custom weights")
	}
}

func TestByNameVariants(t *testing.T) {
	hist, err := ByName("mobic-history")
	if err != nil {
		t.Fatal(err)
	}
	if hist.EWMAAlpha <= 0 || hist.EWMAAlpha >= 1 {
		t.Errorf("mobic-history alpha = %v, want in (0,1)", hist.EWMAAlpha)
	}
	nocci, err := ByName("mobic-nocci")
	if err != nil {
		t.Fatal(err)
	}
	if nocci.Policy.CCI != 0 {
		t.Errorf("mobic-nocci CCI = %v, want 0", nocci.Policy.CCI)
	}
	if nocci.WeightKind != KindMobility || !nocci.Policy.LCC {
		t.Error("mobic-nocci should otherwise match MOBIC")
	}
	oracle, err := ByName("mobic-oracle")
	if err != nil {
		t.Fatal(err)
	}
	if oracle.WeightKind != KindOracleMobility {
		t.Errorf("mobic-oracle kind = %v", oracle.WeightKind)
	}
	if oracle.Policy != MOBIC.Policy {
		t.Error("mobic-oracle should keep MOBIC's policy")
	}
}

func TestNamesAllResolvable(t *testing.T) {
	for _, name := range Names() {
		if _, err := ByName(name); err != nil {
			t.Errorf("Names() entry %q not resolvable: %v", name, err)
		}
	}
	if len(Names()) < 7 {
		t.Errorf("expected at least 7 algorithm names, got %d", len(Names()))
	}
}

func TestWeightKindString(t *testing.T) {
	pairs := map[WeightKind]string{
		KindID:             "id",
		KindMobility:       "mobility",
		KindDegree:         "degree",
		KindCustom:         "custom",
		KindOracleMobility: "oracle-mobility",
		KindAdaptiveID:     "adaptive-id",
		WeightKind(0):      "invalid",
	}
	for k, want := range pairs {
		if k.String() != want {
			t.Errorf("WeightKind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}
