package cluster

// RoleChangeFunc observes a role transition at simulated time now.
type RoleChangeFunc func(now float64, old, new Role)

// HeadChangeFunc observes a clusterhead affiliation change at time now.
type HeadChangeFunc func(now float64, oldHead, newHead int32)

// Node is the per-node clustering state machine. Create one per simulated
// node with NewNode, then call Step every broadcast interval with the node's
// current weight and neighbor snapshot.
//
// Node is not safe for concurrent use.
type Node struct {
	id     int32
	policy Policy

	role   Role
	head   int32
	weight Weight

	// contention maps a rival head's ID to the deadline at which the
	// head-head conflict will be resolved (MOBIC's CCI timers).
	contention map[int32]float64

	// rivalBuf is scratch reused by stepHead so the per-beacon decision
	// round allocates nothing at steady state.
	rivalBuf []NeighborView

	onRoleChange RoleChangeFunc
	onHeadChange HeadChangeFunc
}

// NewNode returns a node in Cluster_Undecided state with no head. The
// initial advertised weight is {0, id}, matching the paper's initialization
// of M to 0 at the beginning of operations (ties broken by ID).
func NewNode(id int32, policy Policy) *Node {
	return &Node{
		id:         id,
		policy:     policy,
		role:       RoleUndecided,
		head:       NoHead,
		weight:     Weight{Value: 0, ID: id},
		contention: make(map[int32]float64),
	}
}

// ID returns the node's identifier.
func (n *Node) ID() int32 { return n.id }

// Role returns the node's current role.
func (n *Node) Role() Role { return n.role }

// Head returns the node's current clusterhead ID: its own ID when it is a
// head, NoHead when unaffiliated.
func (n *Node) Head() int32 { return n.head }

// Weight returns the weight the node last advertised.
func (n *Node) Weight() Weight { return n.weight }

// SetWeight refreshes the advertised weight without running a decision
// round. The hello protocol uses it during the initial listen-only beacon,
// when the node must already advertise its (zero) mobility metric but has
// not yet heard anyone and so must not elect itself.
func (n *Node) SetWeight(w Weight) { n.weight = w }

// OnRoleChange registers a hook observing role transitions (metrics).
func (n *Node) OnRoleChange(f RoleChangeFunc) { n.onRoleChange = f }

// OnHeadChange registers a hook observing head-affiliation changes.
func (n *Node) OnHeadChange(f HeadChangeFunc) { n.onHeadChange = f }

// setRole transitions the role and fires the hook.
func (n *Node) setRole(now float64, r Role) {
	if n.role == r {
		return
	}
	old := n.role
	n.role = r
	if n.onRoleChange != nil {
		n.onRoleChange(now, old, r)
	}
}

// setHead changes the head affiliation and fires the hook.
func (n *Node) setHead(now float64, h int32) {
	if n.head == h {
		return
	}
	old := n.head
	n.head = h
	if n.onHeadChange != nil {
		n.onHeadChange(now, old, h)
	}
}

// becomeHead promotes the node.
func (n *Node) becomeHead(now float64) {
	n.setRole(now, RoleHead)
	n.setHead(now, n.id)
}

// joinCluster demotes/affiliates the node to head h.
func (n *Node) joinCluster(now float64, h int32) {
	n.setRole(now, RoleMember)
	n.setHead(now, h)
	clear(n.contention)
}

// resign drops to undecided with no head.
func (n *Node) resign(now float64) {
	n.setRole(now, RoleUndecided)
	n.setHead(now, NoHead)
	clear(n.contention)
}

// Reset returns the node to the initial Cluster_Undecided state (firing the
// change hooks), clearing contention timers and restoring the initial
// weight. The simulator uses it when a crashed node recovers: protocol
// state does not survive a crash.
func (n *Node) Reset(now float64) {
	n.resign(now)
	n.weight = Weight{Value: 0, ID: n.id}
}

// Resign voluntarily abdicates to the undecided state (firing the change
// hooks) while keeping the advertised weight. Rotation policies — adaptive
// ID reassignment's tenure expiry and the energy model's battery-threshold
// hand-off — use it to force a head to shed the role even though LCC's own
// rules would never depose it: under LCC only a rival head can, and a
// single-cluster topology has none.
func (n *Node) Resign(now float64) {
	n.resign(now)
}

// Step runs one clustering decision round at time now. self is the node's
// freshly computed weight (aggregate mobility for MOBIC, static ID weight
// for Lowest-ID variants); neighbors is the hello protocol's current
// snapshot. Entries must be unique by ID and must not include the node
// itself.
func (n *Node) Step(now float64, self Weight, neighbors []NeighborView) {
	n.weight = self
	if !n.policy.LCC {
		n.stepGreedy(now, neighbors)
		return
	}
	switch n.role {
	case RoleHead:
		n.stepHead(now, neighbors)
	case RoleMember:
		n.stepMember(now, neighbors)
	default:
		n.stepUndecided(now, neighbors)
	}
}

// stepHead handles head-head contention: the only way an established head is
// deposed (in LCC-style operation) is another head moving into range with a
// better weight. With CCI > 0 the resolution is deferred to forgive
// incidental contacts between passing clusters.
func (n *Node) stepHead(now float64, neighbors []NeighborView) {
	// Collect rival heads currently in range.
	rivals := n.rivalBuf[:0]
	for _, nb := range neighbors {
		if nb.Role == RoleHead {
			rivals = append(rivals, nb)
		}
	}
	n.rivalBuf = rivals
	// Drop contention timers for rivals that left range or resigned: the
	// contact was incidental, exactly what CCI is for.
	if len(n.contention) > 0 {
		for id := range n.contention {
			alive := false
			for _, r := range rivals {
				if r.ID == id {
					alive = true
					break
				}
			}
			if !alive {
				delete(n.contention, id)
			}
		}
	}
	if len(rivals) == 0 {
		return
	}

	// Find the best rival whose contention timer has expired (or which
	// resolves immediately when CCI is 0).
	bestExpired := NeighborView{Head: NoHead}
	haveExpired := false
	for _, r := range rivals {
		deadline, tracked := n.contention[r.ID]
		if !tracked {
			if n.policy.CCI > 0 {
				n.contention[r.ID] = now + n.policy.CCI
				continue
			}
			deadline = now
		}
		if now >= deadline {
			if !haveExpired || r.Weight.Less(bestExpired.Weight) {
				bestExpired = r
				haveExpired = true
			}
		}
	}
	if !haveExpired {
		return
	}
	if bestExpired.Weight.Less(n.weight) {
		// The rival wins: give up the head role and join it.
		n.joinCluster(now, bestExpired.ID)
		return
	}
	// I win this contention; the rival's own Step will make it defer.
	// Clear the expired timer so a persistent tie keeps being re-checked.
	delete(n.contention, bestExpired.ID)
}

// stepMember checks that the node's head is still alive and in range. Under
// LCC nothing else can trigger reclustering (Chiang's rule, adopted by
// MOBIC).
func (n *Node) stepMember(now float64, neighbors []NeighborView) {
	if headAlive(n.head, neighbors) {
		return
	}
	// Head lost: rejoin, elect, or resign — all as a single direct
	// transition so observers never see a synthetic intermediate state.
	n.reaffiliate(now, neighbors)
}

// stepUndecided joins the best head in range, or elects itself when it has
// the best weight among the uncovered neighborhood.
func (n *Node) stepUndecided(now float64, neighbors []NeighborView) {
	n.reaffiliate(now, neighbors)
}

// reaffiliate is the common "find a new home" step: join the best audible
// head if any; otherwise elect self iff no uncovered (undecided) neighbor
// has a better weight; otherwise drop to undecided and wait. Members count
// as covered; they will resign when their head dies and contest then.
func (n *Node) reaffiliate(now float64, neighbors []NeighborView) {
	if best, ok := bestHead(neighbors); ok {
		n.joinCluster(now, best.ID)
		return
	}
	for _, nb := range neighbors {
		if nb.Role == RoleUndecided && nb.Weight.Less(n.weight) {
			n.resign(now) // wait: a better-weighted contender claims first
			return
		}
	}
	n.becomeHead(now)
}

// stepGreedy is the aggressive, original Lowest-ID maintenance discipline —
// the instability LCC was invented to fix. It differs from the LCC rules in
// three ways:
//
//   - a member always re-affiliates to the best audible head, instead of
//     sticking with its current head;
//   - a member that has become locally best (lower weight than every
//     audible node) claims the head role even though its head is alive;
//   - a head abdicates not only to a better audible head (resolved
//     immediately, no CCI) but also when a better-weighted undecided node is
//     audible, since under from-scratch re-execution that node outranks it.
//
// Members with lower weights do not depose a head: they are covered by their
// own cluster, which keeps the state machine from flip-flopping while still
// reproducing the reclustering cascades measured in [3].
func (n *Node) stepGreedy(now float64, neighbors []NeighborView) {
	bestH, haveHead := bestHead(neighbors)
	switch n.role {
	case RoleHead:
		if haveHead && bestH.Weight.Less(n.weight) {
			n.joinCluster(now, bestH.ID)
			return
		}
		for _, nb := range neighbors {
			if nb.Role == RoleUndecided && nb.Weight.Less(n.weight) {
				n.resign(now)
				return
			}
		}
	case RoleMember:
		if !headAlive(n.head, neighbors) {
			n.stepGreedyUndecided(now, neighbors, bestH, haveHead)
			return
		}
		if lowestAmongAll(n.weight, neighbors) {
			n.becomeHead(now)
			return
		}
		if haveHead && bestH.ID != n.head {
			if cur, ok := findNeighbor(neighbors, n.head); ok && bestH.Weight.Less(cur.Weight) {
				n.joinCluster(now, bestH.ID)
			}
		}
	default:
		n.stepGreedyUndecided(now, neighbors, bestH, haveHead)
	}
}

// stepGreedyUndecided is the greedy variant's election step. It is also the
// landing step for members whose head died, so the waiting branch must
// explicitly resign.
func (n *Node) stepGreedyUndecided(now float64, neighbors []NeighborView, bestH NeighborView, haveHead bool) {
	if haveHead {
		n.joinCluster(now, bestH.ID)
		return
	}
	for _, nb := range neighbors {
		if nb.Role == RoleUndecided && nb.Weight.Less(n.weight) {
			n.resign(now)
			return
		}
	}
	n.becomeHead(now)
}

// lowestAmongAll reports whether w beats every neighbor's weight.
func lowestAmongAll(w Weight, neighbors []NeighborView) bool {
	for _, nb := range neighbors {
		if !w.Less(nb.Weight) {
			return false
		}
	}
	return true
}

// findNeighbor returns the snapshot entry for id.
func findNeighbor(neighbors []NeighborView, id int32) (NeighborView, bool) {
	for _, nb := range neighbors {
		if nb.ID == id {
			return nb, true
		}
	}
	return NeighborView{}, false
}

// headAlive reports whether head id is present in the snapshot and still
// advertises the head role.
func headAlive(id int32, neighbors []NeighborView) bool {
	if id == NoHead {
		return false
	}
	for _, nb := range neighbors {
		if nb.ID == id {
			return nb.Role == RoleHead
		}
	}
	return false
}

// bestHead returns the lowest-weight neighbor currently advertising the head
// role.
func bestHead(neighbors []NeighborView) (NeighborView, bool) {
	var best NeighborView
	found := false
	for _, nb := range neighbors {
		if nb.Role != RoleHead {
			continue
		}
		if !found || nb.Weight.Less(best.Weight) {
			best = nb
			found = true
		}
	}
	return best, found
}

// IsGateway reports whether a member node currently hears two or more
// distinct clusterheads — the paper's definition of a gateway.
func IsGateway(role Role, neighbors []NeighborView) bool {
	if role != RoleMember {
		return false
	}
	heads := 0
	for _, nb := range neighbors {
		if nb.Role == RoleHead {
			heads++
			if heads >= 2 {
				return true
			}
		}
	}
	return false
}
