// Package cluster implements the paper's Section 3.2 distributed 2-hop
// clustering framework and all algorithms evaluated or cited by the paper:
//
//   - MOBIC — lowest aggregate relative mobility wins, LCC-style
//     reclustering suppression, CCI contention deferral (the contribution).
//   - Lowest-ID — Ephremides/Gerla baseline, aggressive reclustering.
//   - LCC — Chiang's "Least Clusterhead Change" variant of Lowest-ID, the
//     baseline the paper's figures compare against.
//   - Max-Connectivity — highest-degree clusterhead selection (the baseline
//     that LCC was shown to beat; paper Section 2.1).
//   - DCA — Basagni's generic totally-ordered weights.
//
// The engine is deliberately simulator-independent: each node is a Node
// state machine that consumes a snapshot of what its hello protocol knows
// about its neighbors (NeighborView) and decides its own role. This is the
// same information an ns-2 agent had, so the state machine is testable on
// synthetic topologies without any event queue.
package cluster

// Role is a node's clustering status. Gateway is not a Role: per the paper a
// gateway is a member that hears two or more clusterheads, which is derived
// state (see IsGateway).
type Role uint8

// Role values. Start at 1 so the zero value is detectably invalid.
const (
	// RoleUndecided is the initial Cluster_Undecided state.
	RoleUndecided Role = iota + 1
	// RoleHead is Cluster_Head.
	RoleHead
	// RoleMember is Cluster_Member.
	RoleMember
)

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case RoleUndecided:
		return "undecided"
	case RoleHead:
		return "head"
	case RoleMember:
		return "member"
	default:
		return "invalid"
	}
}

// NoHead is the Head value of a node that has no clusterhead.
const NoHead int32 = -1

// Weight is a totally ordered clusterhead-election weight: primary value
// first (aggregate mobility for MOBIC, ID for Lowest-ID, negated degree for
// max-connectivity), node ID as the tie-break. Lower weight wins, exactly as
// in the paper's augmented {M, ID} ordering (proof of Theorem 1).
type Weight struct {
	// Value is the primary weight; lower is better.
	Value float64
	// ID breaks ties; lower wins.
	ID int32
}

// Less reports whether w is strictly better (lower) than o.
func (w Weight) Less(o Weight) bool {
	if w.Value != o.Value {
		return w.Value < o.Value
	}
	return w.ID < o.ID
}

// NeighborView is a node's knowledge of one neighbor, assembled by the hello
// protocol from the neighbor's last beacon.
type NeighborView struct {
	// ID is the neighbor's node ID.
	ID int32
	// Weight is the neighbor's last advertised election weight.
	Weight Weight
	// Role is the neighbor's last advertised role.
	Role Role
	// Head is the neighbor's last advertised clusterhead (NoHead if none).
	Head int32
}

// Policy is the behavioural knob set distinguishing the algorithms.
type Policy struct {
	// LCC suppresses reclustering while a member's own head is alive, even
	// if a better-weighted head comes into range (Chiang's rule, adopted by
	// MOBIC). When false the node re-evaluates greedily every round
	// (original Lowest-ID behaviour).
	LCC bool
	// CCI is the Cluster Contention Interval in seconds: when two heads
	// move into range, resolution is deferred this long to forgive
	// incidental contacts (MOBIC's rule). Zero resolves immediately.
	CCI float64
}
