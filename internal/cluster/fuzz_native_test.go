package cluster

import (
	"testing"
)

// fuzzPolicies is the palette FuzzEngineInvariants picks from: plain
// lowest-weight, LCC, and LCC with two contention-interval settings.
var fuzzPolicies = []Policy{
	{LCC: false},
	{LCC: true},
	{LCC: true, CCI: 2},
	{LCC: true, CCI: 4},
}

// FuzzEngineInvariants is the native-fuzzing companion to
// TestEngineInvariantsUnderRandomSnapshots: instead of sampling random
// snapshots from a PRNG it lets the fuzzer author the whole beacon history
// byte by byte, so mutation can steer directly toward adversarial neighbor
// sequences (stale heads, impossible affiliations, flapping roles) that
// random sampling only hits by luck.
//
// Wire format of data:
//
//	byte 0       policy selector (mod len(fuzzPolicies))
//	then, per step:
//	  byte       self-weight value (0..15 after mod)
//	  byte       neighbor count k (0..7 after mod)
//	  k × 4 bytes  neighbor: id, weight value, role selector, head id
//
// Decoding stops at the first truncated record; whatever prefix decoded is
// the simulated history. The oracle is threefold: the state invariants hold
// after every step, the change hooks replay to the final state, and a
// re-run of the same history on a fresh node reaches the same state
// (the engine is deterministic in its input sequence).
func FuzzEngineInvariants(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{1, 5, 0})
	// One head neighbor 3, then it vanishes, then returns as a member of 9.
	f.Add([]byte{2,
		4, 1, 3, 6, 1, 3,
		4, 0,
		4, 1, 3, 6, 2, 9,
	})
	// Two competing heads with crossing weights under CCI.
	f.Add([]byte{3,
		7, 2, 1, 2, 1, 1, 2, 9, 1, 2,
		7, 2, 1, 9, 1, 1, 2, 2, 1, 2,
		3, 2, 1, 2, 1, 1, 2, 9, 1, 2,
	})
	// Neighbor claiming to be a member of the fuzzed node itself.
	f.Add([]byte{1, 5, 1, 7, 3, 2, 5})

	f.Fuzz(func(t *testing.T, data []byte) {
		const selfID = 5
		run := func(n *Node) {
			if len(data) == 0 {
				return
			}
			rest := data[1:]
			now := 0.0
			for len(rest) >= 2 {
				w := Weight{Value: float64(rest[0] % 16), ID: selfID}
				k := int(rest[1] % 8)
				rest = rest[2:]
				if len(rest) < 4*k {
					break
				}
				views := make([]NeighborView, 0, k)
				seen := map[int32]bool{selfID: true}
				for i := 0; i < k; i++ {
					rec := rest[4*i : 4*i+4]
					id := int32(rec[0] % 20)
					if seen[id] {
						continue
					}
					seen[id] = true
					role := Role(1 + rec[2]%3)
					head := NoHead
					switch role {
					case RoleHead:
						head = id
					case RoleMember:
						head = int32(rec[3] % 20)
					}
					views = append(views, NeighborView{
						ID:     id,
						Weight: Weight{Value: float64(rec[1] % 16), ID: id},
						Role:   role,
						Head:   head,
					})
				}
				rest = rest[4*k:]
				now += 2
				n.Step(now, w, views)
				checkInvariants(t, n)
			}
		}

		var policy Policy
		if len(data) > 0 {
			policy = fuzzPolicies[int(data[0])%len(fuzzPolicies)]
		}

		first := NewNode(selfID, policy)
		role, head := first.Role(), first.Head()
		first.OnRoleChange(func(_ float64, old, newRole Role) {
			if old != role {
				t.Fatalf("role hook: old %v, tracked %v", old, role)
			}
			role = newRole
		})
		first.OnHeadChange(func(_ float64, oldHead, newHead int32) {
			if oldHead != head {
				t.Fatalf("head hook: old %d, tracked %d", oldHead, head)
			}
			head = newHead
		})
		run(first)
		if role != first.Role() || head != first.Head() {
			t.Fatalf("hook replay diverged: hooks say (%v, %d), node says (%v, %d)",
				role, head, first.Role(), first.Head())
		}

		second := NewNode(selfID, policy)
		run(second)
		if second.Role() != first.Role() || second.Head() != first.Head() {
			t.Fatalf("same history, different state: (%v, %d) vs (%v, %d)",
				first.Role(), first.Head(), second.Role(), second.Head())
		}
	})
}
