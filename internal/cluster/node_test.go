package cluster

import (
	"testing"
)

func TestWeightLess(t *testing.T) {
	tests := []struct {
		name string
		a, b Weight
		want bool
	}{
		{name: "lower value wins", a: Weight{Value: 1, ID: 9}, b: Weight{Value: 2, ID: 1}, want: true},
		{name: "higher value loses", a: Weight{Value: 3, ID: 1}, b: Weight{Value: 2, ID: 9}, want: false},
		{name: "tie broken by id", a: Weight{Value: 2, ID: 1}, b: Weight{Value: 2, ID: 2}, want: true},
		{name: "tie broken by id reverse", a: Weight{Value: 2, ID: 2}, b: Weight{Value: 2, ID: 1}, want: false},
		{name: "identical is not less", a: Weight{Value: 2, ID: 2}, b: Weight{Value: 2, ID: 2}, want: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Less(tt.b); got != tt.want {
				t.Errorf("Less = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestRoleString(t *testing.T) {
	if RoleUndecided.String() != "undecided" || RoleHead.String() != "head" ||
		RoleMember.String() != "member" || Role(0).String() != "invalid" {
		t.Error("Role.String mismatch")
	}
}

func idWeight(id int32) Weight { return Weight{Value: float64(id), ID: id} }

func nb(id int32, w Weight, role Role, head int32) NeighborView {
	return NeighborView{ID: id, Weight: w, Role: role, Head: head}
}

func TestNewNodeInitialState(t *testing.T) {
	n := NewNode(7, Policy{LCC: true})
	if n.ID() != 7 || n.Role() != RoleUndecided || n.Head() != NoHead {
		t.Errorf("initial state: id=%d role=%v head=%d", n.ID(), n.Role(), n.Head())
	}
	if n.Weight() != (Weight{Value: 0, ID: 7}) {
		t.Errorf("initial weight = %v, want {0 7} (paper's M init)", n.Weight())
	}
}

func TestIsolatedNodeBecomesHead(t *testing.T) {
	for _, lcc := range []bool{true, false} {
		n := NewNode(5, Policy{LCC: lcc})
		n.Step(0, idWeight(5), nil)
		if n.Role() != RoleHead {
			t.Errorf("LCC=%v: isolated node role = %v, want head", lcc, n.Role())
		}
		if n.Head() != 5 {
			t.Errorf("LCC=%v: isolated head of itself, got %d", lcc, n.Head())
		}
	}
}

func TestUndecidedDefersToLowerUndecided(t *testing.T) {
	n := NewNode(5, Policy{LCC: true})
	n.Step(0, idWeight(5), []NeighborView{
		nb(3, idWeight(3), RoleUndecided, NoHead),
	})
	if n.Role() != RoleUndecided {
		t.Errorf("role = %v, want undecided (lower-weight contender present)", n.Role())
	}
}

func TestUndecidedBecomesHeadOverHigherUndecided(t *testing.T) {
	n := NewNode(3, Policy{LCC: true})
	n.Step(0, idWeight(3), []NeighborView{
		nb(5, idWeight(5), RoleUndecided, NoHead),
		nb(9, idWeight(9), RoleUndecided, NoHead),
	})
	if n.Role() != RoleHead {
		t.Errorf("role = %v, want head (lowest weight in hood)", n.Role())
	}
}

func TestUndecidedIgnoresCoveredMembers(t *testing.T) {
	// A lower-weight MEMBER neighbor is covered; the node should still
	// elect itself (Gerla's covered rule).
	n := NewNode(5, Policy{LCC: true})
	n.Step(0, idWeight(5), []NeighborView{
		nb(2, idWeight(2), RoleMember, 1),
	})
	if n.Role() != RoleHead {
		t.Errorf("role = %v, want head (member neighbors are covered)", n.Role())
	}
}

func TestUndecidedJoinsBestHead(t *testing.T) {
	n := NewNode(5, Policy{LCC: true})
	n.Step(0, idWeight(5), []NeighborView{
		nb(7, idWeight(7), RoleHead, 7),
		nb(2, idWeight(2), RoleHead, 2),
		nb(1, idWeight(1), RoleUndecided, NoHead), // lower but not a head
	})
	if n.Role() != RoleMember || n.Head() != 2 {
		t.Errorf("got role=%v head=%d, want member of 2", n.Role(), n.Head())
	}
}

func TestLCCMemberSticksWithAliveHead(t *testing.T) {
	// The LCC rule: a better head coming in range does NOT recluster.
	n := NewNode(5, Policy{LCC: true})
	n.Step(0, idWeight(5), []NeighborView{nb(4, idWeight(4), RoleHead, 4)})
	if n.Head() != 4 {
		t.Fatalf("setup: head = %d", n.Head())
	}
	n.Step(2, idWeight(5), []NeighborView{
		nb(4, idWeight(4), RoleHead, 4),
		nb(1, idWeight(1), RoleHead, 1), // better head appears
	})
	if n.Head() != 4 {
		t.Errorf("LCC member switched to %d; should stick with 4", n.Head())
	}
}

func TestMemberRejoinsWhenHeadDies(t *testing.T) {
	n := NewNode(5, Policy{LCC: true})
	n.Step(0, idWeight(5), []NeighborView{nb(4, idWeight(4), RoleHead, 4)})
	// Head 4 vanishes; head 6 is audible.
	n.Step(2, idWeight(5), []NeighborView{nb(6, idWeight(6), RoleHead, 6)})
	if n.Role() != RoleMember || n.Head() != 6 {
		t.Errorf("got role=%v head=%d, want member of 6", n.Role(), n.Head())
	}
}

func TestMemberElectsSelfWhenHeadDiesAndNoHeads(t *testing.T) {
	n := NewNode(5, Policy{LCC: true})
	n.Step(0, idWeight(5), []NeighborView{nb(4, idWeight(4), RoleHead, 4)})
	// Alone now except a higher undecided.
	n.Step(2, idWeight(5), []NeighborView{nb(9, idWeight(9), RoleUndecided, NoHead)})
	if n.Role() != RoleHead {
		t.Errorf("role = %v, want head after head loss with no better contender", n.Role())
	}
}

func TestMemberHeadDemotedTriggersReelection(t *testing.T) {
	// The head is still audible but no longer advertises RoleHead.
	n := NewNode(5, Policy{LCC: true})
	n.Step(0, idWeight(5), []NeighborView{nb(4, idWeight(4), RoleHead, 4)})
	n.Step(2, idWeight(5), []NeighborView{nb(4, idWeight(4), RoleMember, 1)})
	if n.Head() == 4 {
		t.Error("member should not keep a demoted head")
	}
}

func TestHeadContentionImmediateWithoutCCI(t *testing.T) {
	// Two heads meet, CCI = 0: lower weight retains, higher joins.
	loser := NewNode(5, Policy{LCC: true, CCI: 0})
	loser.Step(0, idWeight(5), nil) // becomes head
	loser.Step(2, idWeight(5), []NeighborView{nb(3, idWeight(3), RoleHead, 3)})
	if loser.Role() != RoleMember || loser.Head() != 3 {
		t.Errorf("loser role=%v head=%d, want member of 3", loser.Role(), loser.Head())
	}

	winner := NewNode(3, Policy{LCC: true, CCI: 0})
	winner.Step(0, idWeight(3), nil)
	winner.Step(2, idWeight(3), []NeighborView{nb(5, idWeight(5), RoleHead, 5)})
	if winner.Role() != RoleHead {
		t.Errorf("winner role = %v, want head retained", winner.Role())
	}
}

func TestHeadContentionDeferredByCCI(t *testing.T) {
	n := NewNode(5, Policy{LCC: true, CCI: 4})
	n.Step(0, idWeight(5), nil)
	rival := nb(3, idWeight(3), RoleHead, 3)

	// t=2: rival appears; contention starts, no resolution yet.
	n.Step(2, idWeight(5), []NeighborView{rival})
	if n.Role() != RoleHead {
		t.Fatal("resolution must be deferred during CCI")
	}
	// t=4: still within CCI (deadline 6).
	n.Step(4, idWeight(5), []NeighborView{rival})
	if n.Role() != RoleHead {
		t.Fatal("still within CCI window")
	}
	// t=6: deadline reached; rival wins.
	n.Step(6, idWeight(5), []NeighborView{rival})
	if n.Role() != RoleMember || n.Head() != 3 {
		t.Errorf("after CCI expiry: role=%v head=%d, want member of 3", n.Role(), n.Head())
	}
}

func TestCCIForgivesIncidentalContact(t *testing.T) {
	n := NewNode(5, Policy{LCC: true, CCI: 4})
	n.Step(0, idWeight(5), nil)
	rival := nb(3, idWeight(3), RoleHead, 3)

	n.Step(2, idWeight(5), []NeighborView{rival}) // contention starts, deadline 6
	n.Step(4, idWeight(5), nil)                   // rival passed by: timer must clear
	n.Step(7, idWeight(5), []NeighborView{rival}) // rival returns: new timer, deadline 11
	if n.Role() != RoleHead {
		t.Fatal("contention timer should have been reset by the gap")
	}
	n.Step(9, idWeight(5), []NeighborView{rival})
	if n.Role() != RoleHead {
		t.Fatal("deadline is 11, not 9")
	}
	n.Step(11, idWeight(5), []NeighborView{rival})
	if n.Role() != RoleMember {
		t.Error("persistent contact past CCI should resolve")
	}
}

func TestCCIWinnerKeepsRoleAndReArmsTimer(t *testing.T) {
	n := NewNode(3, Policy{LCC: true, CCI: 4})
	n.Step(0, idWeight(3), nil)
	rival := nb(5, idWeight(5), RoleHead, 5)
	n.Step(2, idWeight(3), []NeighborView{rival})
	n.Step(6, idWeight(3), []NeighborView{rival}) // expiry: I win
	if n.Role() != RoleHead {
		t.Fatal("winner must keep head role")
	}
	// Rival (buggy or weights shifted) persists: re-check happens again
	// later rather than resolving every round.
	n.Step(7, idWeight(3), []NeighborView{rival})
	if n.Role() != RoleHead {
		t.Error("winner keeps role on persistent contact")
	}
}

func TestGreedyMemberSwitchesToBetterHead(t *testing.T) {
	n := NewNode(5, Policy{LCC: false})
	n.Step(0, idWeight(5), []NeighborView{nb(4, idWeight(4), RoleHead, 4)})
	if n.Head() != 4 {
		t.Fatalf("setup failed: head=%d", n.Head())
	}
	n.Step(2, idWeight(5), []NeighborView{
		nb(4, idWeight(4), RoleHead, 4),
		nb(1, idWeight(1), RoleHead, 1),
	})
	if n.Head() != 1 {
		t.Errorf("greedy member should switch to head 1, got %d", n.Head())
	}
}

func TestGreedyHeadAbdicatesToLowerUndecided(t *testing.T) {
	n := NewNode(5, Policy{LCC: false})
	n.Step(0, idWeight(5), nil)
	if n.Role() != RoleHead {
		t.Fatal("setup")
	}
	n.Step(2, idWeight(5), []NeighborView{nb(1, idWeight(1), RoleUndecided, NoHead)})
	if n.Role() != RoleUndecided {
		t.Errorf("greedy head should resign to a lower undecided, role=%v", n.Role())
	}
}

func TestGreedyHeadJoinsLowerHeadImmediately(t *testing.T) {
	n := NewNode(5, Policy{LCC: false})
	n.Step(0, idWeight(5), nil)
	n.Step(2, idWeight(5), []NeighborView{nb(3, idWeight(3), RoleHead, 3)})
	if n.Role() != RoleMember || n.Head() != 3 {
		t.Errorf("greedy head-head: role=%v head=%d, want member of 3", n.Role(), n.Head())
	}
}

func TestGreedyLocallyBestMemberClaimsHead(t *testing.T) {
	n := NewNode(2, Policy{LCC: false})
	n.Step(0, idWeight(2), []NeighborView{nb(1, idWeight(1), RoleHead, 1)})
	if n.Role() != RoleMember {
		t.Fatal("setup")
	}
	// Head 1 left; only higher-weight members around now.
	n.Step(2, idWeight(2), []NeighborView{nb(7, idWeight(7), RoleMember, 1)})
	if n.Role() != RoleHead {
		t.Errorf("greedy locally-best node should claim head, role=%v", n.Role())
	}
}

func TestGreedyMemberDoesNotDeposeHead(t *testing.T) {
	// A lower-weight MEMBER passing by must not depose a greedy head
	// (it is covered by its own cluster).
	n := NewNode(5, Policy{LCC: false})
	n.Step(0, idWeight(5), nil)
	n.Step(2, idWeight(5), []NeighborView{nb(1, idWeight(1), RoleMember, 0)})
	if n.Role() != RoleHead {
		t.Errorf("head deposed by passing member: role=%v", n.Role())
	}
}

func TestRoleChangeHook(t *testing.T) {
	n := NewNode(1, Policy{LCC: true})
	var transitions []Role
	n.OnRoleChange(func(_ float64, _, newRole Role) {
		transitions = append(transitions, newRole)
	})
	n.Step(0, idWeight(1), nil) // -> head
	n.Step(2, idWeight(1), []NeighborView{nb(0, idWeight(0), RoleHead, 0)})
	if len(transitions) != 2 || transitions[0] != RoleHead || transitions[1] != RoleMember {
		t.Errorf("transitions = %v, want [head member]", transitions)
	}
}

func TestHeadChangeHook(t *testing.T) {
	n := NewNode(9, Policy{LCC: true})
	var heads []int32
	n.OnHeadChange(func(_ float64, _, newHead int32) {
		heads = append(heads, newHead)
	})
	n.Step(0, idWeight(9), []NeighborView{nb(2, idWeight(2), RoleHead, 2)})
	n.Step(2, idWeight(9), []NeighborView{nb(4, idWeight(4), RoleHead, 4)}) // 2 gone
	if len(heads) != 2 || heads[0] != 2 || heads[1] != 4 {
		t.Errorf("head changes = %v, want [2 4]", heads)
	}
}

func TestIsGateway(t *testing.T) {
	twoHeads := []NeighborView{
		nb(1, idWeight(1), RoleHead, 1),
		nb(2, idWeight(2), RoleHead, 2),
	}
	oneHead := twoHeads[:1]
	if !IsGateway(RoleMember, twoHeads) {
		t.Error("member hearing 2 heads is a gateway")
	}
	if IsGateway(RoleMember, oneHead) {
		t.Error("member hearing 1 head is not a gateway")
	}
	if IsGateway(RoleHead, twoHeads) {
		t.Error("a head is never a gateway")
	}
	if IsGateway(RoleUndecided, twoHeads) {
		t.Error("an undecided node is never a gateway")
	}
}

func TestMobicWeightTieFallsBackToID(t *testing.T) {
	// Both undecided with identical M: lower ID must win (paper rule).
	a := NewNode(1, MOBIC.Policy)
	b := NewNode(2, MOBIC.Policy)
	wA := Weight{Value: 2.5, ID: 1}
	wB := Weight{Value: 2.5, ID: 2}
	a.Step(0, wA, []NeighborView{nb(2, wB, RoleUndecided, NoHead)})
	b.Step(0, wB, []NeighborView{nb(1, wA, RoleUndecided, NoHead)})
	if a.Role() != RoleHead {
		t.Errorf("node 1 should win the tie, role=%v", a.Role())
	}
	if b.Role() != RoleUndecided {
		t.Errorf("node 2 should defer, role=%v", b.Role())
	}
}

func TestMobicLowMobilityMemberDoesNotTriggerReclustering(t *testing.T) {
	// Paper: "If a node with Cluster_Member status with a low mobility
	// moves into the range of another Cluster_Head node with higher
	// mobility, reclustering is not triggered (similar to LCC)."
	m := NewNode(9, MOBIC.Policy)
	myHead := nb(4, Weight{Value: 1.0, ID: 4}, RoleHead, 4)
	m.Step(0, Weight{Value: 0.1, ID: 9}, []NeighborView{myHead})
	if m.Head() != 4 {
		t.Fatal("setup")
	}
	// A higher-mobility head appears; member's own M is lower than both.
	other := nb(7, Weight{Value: 5.0, ID: 7}, RoleHead, 7)
	m.Step(2, Weight{Value: 0.1, ID: 9}, []NeighborView{myHead, other})
	if m.Head() != 4 || m.Role() != RoleMember {
		t.Errorf("reclustering triggered: role=%v head=%d", m.Role(), m.Head())
	}
}

func TestResignKeepsWeightAndFiresHooks(t *testing.T) {
	n := NewNode(5, AdaptiveLowestID.Policy)
	n.Step(0, idWeight(5), nil)
	if n.Role() != RoleHead {
		t.Fatal("setup: isolated node should elect itself")
	}
	var roleNow float64
	var gotRole Role
	var gotHead int32 = -99
	n.OnRoleChange(func(now float64, old, new Role) { roleNow, gotRole = now, new })
	n.OnHeadChange(func(now float64, oldHead, newHead int32) { gotHead = newHead })
	w := Weight{Value: 105, ID: 5} // tenure-inflated adaptive-ID weight
	n.SetWeight(w)
	n.Resign(7)
	if n.Role() != RoleUndecided || n.Head() != NoHead {
		t.Errorf("after Resign: role=%v head=%d, want undecided/NoHead", n.Role(), n.Head())
	}
	if gotRole != RoleUndecided || roleNow != 7 || gotHead != NoHead {
		t.Errorf("hooks saw role=%v at t=%g head=%d, want undecided at 7, NoHead",
			gotRole, roleNow, gotHead)
	}
	if n.Weight() != w {
		t.Errorf("Resign dropped the advertised weight: %v, want %v", n.Weight(), w)
	}
	// The abdicated node re-enters the next round like any undecided node.
	n.Step(8, idWeight(5), nil)
	if n.Role() != RoleHead {
		t.Errorf("resigned node cannot re-elect: role=%v", n.Role())
	}
}

func TestResetRestoresInitialWeight(t *testing.T) {
	n := NewNode(5, MOBIC.Policy)
	n.Step(0, Weight{Value: 3.5, ID: 5}, nil)
	if n.Role() != RoleHead {
		t.Fatal("setup: isolated node should elect itself")
	}
	n.Reset(4)
	if n.Role() != RoleUndecided || n.Head() != NoHead {
		t.Errorf("after Reset: role=%v head=%d, want undecided/NoHead", n.Role(), n.Head())
	}
	if n.Weight() != (Weight{Value: 0, ID: 5}) {
		t.Errorf("Reset kept a stale weight %v, want the paper's M=0 init", n.Weight())
	}
}

func TestSetWeightDoesNotRunADecisionRound(t *testing.T) {
	n := NewNode(5, MOBIC.Policy)
	n.SetWeight(Weight{Value: 1.25, ID: 5})
	if n.Weight() != (Weight{Value: 1.25, ID: 5}) {
		t.Errorf("advertised weight = %v, want {1.25 5}", n.Weight())
	}
	if n.Role() != RoleUndecided {
		t.Errorf("SetWeight elected the node: role=%v", n.Role())
	}
}
