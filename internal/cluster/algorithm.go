package cluster

import (
	"errors"
	"fmt"
)

// WeightKind selects what a node advertises as its election weight.
type WeightKind uint8

// Weight kinds.
const (
	// KindID uses the node's ID as the weight (Lowest-ID family). Static,
	// totally ordered.
	KindID WeightKind = iota + 1
	// KindMobility uses the aggregate local mobility metric M (MOBIC).
	KindMobility
	// KindDegree uses the negated neighbor count, so the highest-degree
	// node wins (max-connectivity baseline).
	KindDegree
	// KindCustom uses caller-provided static weights (DCA).
	KindCustom
	// KindOracleMobility uses ground-truth range rates from the mobility
	// trajectories (variance about zero of d(distance)/dt to each
	// neighbor) — the GPS-assisted geometric metric the paper's Section
	// 2.2 argues real deployments cannot assume. It exists as an oracle
	// upper bound for the signal-strength metric.
	KindOracleMobility
	// KindAdaptiveID is Lowest-ID with adaptive ID reassignment (Gavalas
	// et al., arXiv:1109.3997): the effective ID of a node grows by N for
	// every Algorithm.ReassignRounds consecutive rounds it serves as
	// clusterhead, so long-serving heads are periodically re-ranked behind
	// every fresh node and shed the role. The tenure counter resets the
	// moment the node stops serving. With ReassignRounds <= 0 the weight
	// degenerates to the plain static ID and the algorithm is bit-identical
	// to LCC (the differential the harness pins).
	KindAdaptiveID
)

// String implements fmt.Stringer.
func (k WeightKind) String() string {
	switch k {
	case KindID:
		return "id"
	case KindMobility:
		return "mobility"
	case KindDegree:
		return "degree"
	case KindCustom:
		return "custom"
	case KindOracleMobility:
		return "oracle-mobility"
	case KindAdaptiveID:
		return "adaptive-id"
	default:
		return "invalid"
	}
}

// Algorithm bundles a policy with a weight kind: one row of the paper's
// algorithm taxonomy.
type Algorithm struct {
	// Name is the identifier used in configs and experiment output.
	Name string
	// Policy carries the LCC/CCI behaviour.
	Policy Policy
	// WeightKind selects the advertised weight.
	WeightKind WeightKind
	// EWMAAlpha, when in (0, 1), smooths the mobility metric with history
	// (Section 5 extension). Only meaningful with KindMobility; 0 or 1
	// disables smoothing.
	EWMAAlpha float64
	// PairwiseEWMAAlpha, when in (0, 1), smooths each neighbor's relative
	// mobility stream before aggregation instead (alternative history
	// placement). Only meaningful with KindMobility.
	PairwiseEWMAAlpha float64
	// ReassignRounds is KindAdaptiveID's re-ranking period: after this
	// many consecutive rounds of clusterhead service the node's effective
	// ID is pushed behind every fresh node. <= 0 disables reassignment
	// (plain Lowest-ID weights). Only meaningful with KindAdaptiveID.
	ReassignRounds int
}

// DefaultCCI is the paper's Cluster Contention Interval (Table 1).
const DefaultCCI = 4.0

// Predefined algorithms.
var (
	// LowestID is the original aggressive Lowest-ID algorithm
	// (Ephremides/Gerla): reclustering happens whenever a lower ID is
	// audible.
	LowestID = Algorithm{
		Name:       "lowest-id",
		Policy:     Policy{LCC: false},
		WeightKind: KindID,
	}

	// LCC is Chiang's Least Clusterhead Change variant of Lowest-ID — the
	// baseline of the paper's figures (the paper says "Lowest-ID" but
	// specifies "actually its LCC variant").
	LCC = Algorithm{
		Name:       "lcc",
		Policy:     Policy{LCC: true},
		WeightKind: KindID,
	}

	// MOBIC is the paper's contribution: lowest aggregate relative
	// mobility with LCC suppression and CCI contention deferral.
	MOBIC = Algorithm{
		Name:       "mobic",
		Policy:     Policy{LCC: true, CCI: DefaultCCI},
		WeightKind: KindMobility,
	}

	// MaxConnectivity elects the highest-degree node (Section 2.1's
	// max-connectivity baseline, shown in [3] to be less stable).
	MaxConnectivity = Algorithm{
		Name:       "max-degree",
		Policy:     Policy{LCC: false},
		WeightKind: KindDegree,
	}

	// DCA is Basagni's generalized weight-based clustering with static
	// totally ordered per-node weights supplied by the scenario.
	DCA = Algorithm{
		Name:       "dca",
		Policy:     Policy{LCC: true},
		WeightKind: KindCustom,
	}

	// AdaptiveLowestID is LCC running on adaptively reassigned IDs
	// (arXiv:1109.3997): the default re-ranking period of 30 rounds (60 s
	// at the Table 1 beacon interval) bounds any node's uninterrupted head
	// tenure while keeping the election as cheap as plain Lowest-ID.
	AdaptiveLowestID = Algorithm{
		Name:           "adaptive-lowest-id",
		Policy:         Policy{LCC: true},
		WeightKind:     KindAdaptiveID,
		ReassignRounds: 30,
	}
)

// ErrUnknownAlgorithm is returned by ByName for an unrecognized name.
var ErrUnknownAlgorithm = errors.New("cluster: unknown algorithm")

// ByName resolves an algorithm by its Name field. Recognized names:
// "lowest-id", "lcc", "mobic", "max-degree", "dca", "adaptive-lowest-id",
// plus "mobic-history" (MOBIC with EWMA alpha 0.5) and "mobic-nocci" (MOBIC
// with CCI disabled, the A1 ablation).
func ByName(name string) (Algorithm, error) {
	switch name {
	case LowestID.Name:
		return LowestID, nil
	case LCC.Name:
		return LCC, nil
	case MOBIC.Name, "":
		return MOBIC, nil
	case MaxConnectivity.Name:
		return MaxConnectivity, nil
	case DCA.Name:
		return DCA, nil
	case AdaptiveLowestID.Name:
		return AdaptiveLowestID, nil
	case "mobic-history":
		a := MOBIC
		a.Name = "mobic-history"
		a.EWMAAlpha = 0.5
		return a, nil
	case "mobic-nocci":
		a := MOBIC
		a.Name = "mobic-nocci"
		a.Policy.CCI = 0
		return a, nil
	case "mobic-oracle":
		a := MOBIC
		a.Name = "mobic-oracle"
		a.WeightKind = KindOracleMobility
		return a, nil
	case "mobic-pairhistory":
		a := MOBIC
		a.Name = "mobic-pairhistory"
		a.PairwiseEWMAAlpha = 0.5
		return a, nil
	default:
		return Algorithm{}, fmt.Errorf("%w: %q", ErrUnknownAlgorithm, name)
	}
}

// Names lists every name ByName accepts, for CLI help output.
func Names() []string {
	return []string{
		LowestID.Name, LCC.Name, MOBIC.Name, MaxConnectivity.Name, DCA.Name,
		AdaptiveLowestID.Name,
		"mobic-history", "mobic-nocci", "mobic-oracle", "mobic-pairhistory",
	}
}
