// Package viz renders experiment results as ASCII line charts and aligned
// tables for terminal output — the closest a stdlib-only harness gets to
// regenerating the paper's figures visually. The cmd/experiments tool prints
// these under each regenerated figure so curve shapes (peaks, crossovers)
// can be eyeballed against the paper.
package viz

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named curve.
type Series struct {
	// Name labels the curve in the legend.
	Name string
	// Y holds one value per X point.
	Y []float64
}

// markers are assigned to series in order.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// LineChart renders one or more series over a shared X axis into a
// fixed-size character grid with axes, tick labels and a legend. Width and
// height are the plot-area dimensions in characters (sensible minimums are
// enforced).
func LineChart(x []float64, series []Series, width, height int, xLabel, yLabel string) string {
	if width < 20 {
		width = 20
	}
	if height < 5 {
		height = 5
	}
	if len(x) == 0 || len(series) == 0 {
		return "(no data)\n"
	}

	xMin, xMax := minMax(x)
	yMin, yMax := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		lo, hi := minMax(s.Y)
		yMin = math.Min(yMin, lo)
		yMax = math.Max(yMax, hi)
	}
	if yMin > 0 && yMin < yMax/4 {
		yMin = 0 // anchor near-zero data at zero for honest shapes
	}
	if yMax == yMin {
		yMax = yMin + 1
	}
	if xMax == xMin {
		xMax = xMin + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	col := func(xv float64) int {
		c := int(math.Round((xv - xMin) / (xMax - xMin) * float64(width-1)))
		return clamp(c, 0, width-1)
	}
	row := func(yv float64) int {
		r := int(math.Round((yv - yMin) / (yMax - yMin) * float64(height-1)))
		return clamp(height-1-r, 0, height-1)
	}

	for si, s := range series {
		mark := markers[si%len(markers)]
		// Connect consecutive points with interpolated steps so curve
		// shapes read clearly even with few X samples.
		for i := 0; i < len(s.Y) && i < len(x); i++ {
			grid[row(s.Y[i])][col(x[i])] = mark
			if i == 0 {
				continue
			}
			steps := col(x[i]) - col(x[i-1])
			for c := 1; c < steps; c++ {
				frac := float64(c) / float64(steps)
				yv := s.Y[i-1] + (s.Y[i]-s.Y[i-1])*frac
				cc := col(x[i-1]) + c
				rr := row(yv)
				if grid[rr][cc] == ' ' {
					grid[rr][cc] = '.'
				}
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", yLabel)
	for r, line := range grid {
		label := "        "
		switch r {
		case 0:
			label = fmt.Sprintf("%8.4g", yMax)
		case height - 1:
			label = fmt.Sprintf("%8.4g", yMin)
		case (height - 1) / 2:
			label = fmt.Sprintf("%8.4g", yMin+(yMax-yMin)/2)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(line))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", 8), strings.Repeat("-", width))
	fmt.Fprintf(&b, "%s  %-10.4g%s%10.4g  (%s)\n",
		strings.Repeat(" ", 8), xMin, strings.Repeat(" ", max(0, width-20)), xMax, xLabel)
	b.WriteString("          legend:")
	for si, s := range series {
		fmt.Fprintf(&b, " %c=%s", markers[si%len(markers)], s.Name)
	}
	b.WriteByte('\n')
	return b.String()
}

func minMax(xs []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	return lo, hi
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
