package viz

import (
	"strings"
	"testing"
)

func TestClusterMapGlyphs(t *testing.T) {
	nodes := []MapNode{
		{X: 100, Y: 100, Head: 0, IsHead: true},
		{X: 150, Y: 100, Head: 0},
		{X: 500, Y: 500, Head: 3, IsHead: true},
		{X: 520, Y: 480, Head: 3, Gateway: true},
		{X: 600, Y: 100, Head: -1},
	}
	out := ClusterMap(nodes, 670, 670, 40, 16)
	for _, want := range []string{"A", "a", "B", "+", "?"} {
		if !strings.Contains(out, want) {
			t.Errorf("map missing glyph %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "670x670 m") {
		t.Errorf("map missing legend:\n%s", out)
	}
}

func TestClusterMapSameClusterSameLetter(t *testing.T) {
	nodes := []MapNode{
		{X: 10, Y: 10, Head: 7, IsHead: true},
		{X: 650, Y: 650, Head: 7},
	}
	out := ClusterMap(nodes, 670, 670, 40, 16)
	// Only inspect the grid itself, not the legend line (which contains
	// letters of its own).
	lines := strings.Split(strings.TrimSpace(out), "\n")
	grid := strings.Join(lines[:len(lines)-1], "\n")
	if !strings.Contains(grid, "A") || !strings.Contains(grid, "a") {
		t.Errorf("head and member of cluster 7 should share the letter A/a:\n%s", out)
	}
	if strings.Contains(grid, "B") || strings.Contains(grid, "b") {
		t.Errorf("single cluster must not use a second letter:\n%s", out)
	}
}

func TestClusterMapEmptyAndInvalid(t *testing.T) {
	if out := ClusterMap(nil, 670, 670, 40, 16); out != "(no map)\n" {
		t.Errorf("empty map = %q", out)
	}
	if out := ClusterMap([]MapNode{{X: 1, Y: 1}}, 0, 670, 40, 16); out != "(no map)\n" {
		t.Errorf("zero width map = %q", out)
	}
}

func TestClusterMapClampsPositionsAndDims(t *testing.T) {
	nodes := []MapNode{
		{X: -50, Y: 900, Head: 0, IsHead: true}, // out of area: clamped to an edge cell
	}
	out := ClusterMap(nodes, 670, 670, 1, 1) // dims clamped up to 10x5
	if !strings.Contains(out, "A") {
		t.Errorf("out-of-area node should be drawn on the boundary:\n%s", out)
	}
}

func TestClusterMapOrientationYUp(t *testing.T) {
	// A node at the top of the area must be drawn on an earlier line than
	// a node at the bottom (Y grows upward in the rendering).
	nodes := []MapNode{
		{X: 335, Y: 650, Head: 0, IsHead: true}, // top — letter A
		{X: 335, Y: 20, Head: 1, IsHead: true},  // bottom — letter B
	}
	out := ClusterMap(nodes, 670, 670, 40, 12)
	if strings.Index(out, "A") > strings.Index(out, "B") {
		t.Errorf("Y axis should point up:\n%s", out)
	}
}
