package viz

import (
	"fmt"
	"math"
	"strings"
)

// svgPalette holds distinguishable series colors (dark on white).
var svgPalette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd",
	"#ff7f0e", "#8c564b", "#17becf", "#7f7f7f",
}

// SVGChart renders the series as a standalone SVG line chart with axes,
// tick labels and a legend — the publication-shaped counterpart of
// LineChart, written by cmd/experiments next to each CSV so regenerated
// figures can be viewed directly.
func SVGChart(x []float64, series []Series, title, xLabel, yLabel string) string {
	const (
		width   = 640.0
		height  = 420.0
		marginL = 70.0
		marginR = 20.0
		marginT = 50.0
		marginB = 60.0
	)
	plotW := width - marginL - marginR
	plotH := height - marginT - marginB

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		width, height, width, height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(&b, `<text x="%.0f" y="24" font-family="sans-serif" font-size="14" text-anchor="middle">%s</text>`+"\n",
		width/2, xmlEscape(title))

	if len(x) == 0 || len(series) == 0 {
		b.WriteString(`<text x="320" y="210" font-family="sans-serif" font-size="12">no data</text>` + "\n</svg>\n")
		return b.String()
	}

	xMin, xMax := minMax(x)
	yMin, yMax := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		lo, hi := minMax(s.Y)
		yMin = math.Min(yMin, lo)
		yMax = math.Max(yMax, hi)
	}
	if yMin > 0 && yMin < yMax/4 {
		yMin = 0
	}
	if yMax == yMin {
		yMax = yMin + 1
	}
	if xMax == xMin {
		xMax = xMin + 1
	}
	px := func(v float64) float64 { return marginL + (v-xMin)/(xMax-xMin)*plotW }
	py := func(v float64) float64 { return marginT + (1-(v-yMin)/(yMax-yMin))*plotH }

	// Axes.
	fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n",
		marginL, marginT, marginL, marginT+plotH)
	fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n",
		marginL, marginT+plotH, marginL+plotW, marginT+plotH)
	// Ticks: 5 per axis.
	for i := 0; i <= 4; i++ {
		frac := float64(i) / 4
		xv := xMin + frac*(xMax-xMin)
		yv := yMin + frac*(yMax-yMin)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n",
			px(xv), marginT+plotH, px(xv), marginT+plotH+5)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="10" text-anchor="middle">%.4g</text>`+"\n",
			px(xv), marginT+plotH+18, xv)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n",
			marginL-5, py(yv), marginL, py(yv))
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="10" text-anchor="end">%.4g</text>`+"\n",
			marginL-8, py(yv)+3, yv)
		// Light horizontal gridline.
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#dddddd"/>`+"\n",
			marginL, py(yv), marginL+plotW, py(yv))
	}
	// Axis labels.
	fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="12" text-anchor="middle">%s</text>`+"\n",
		marginL+plotW/2, height-15, xmlEscape(xLabel))
	fmt.Fprintf(&b, `<text x="16" y="%.1f" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 16 %.1f)">%s</text>`+"\n",
		marginT+plotH/2, marginT+plotH/2, xmlEscape(yLabel))

	// Series polylines + point markers.
	for si, s := range series {
		color := svgPalette[si%len(svgPalette)]
		var pts []string
		for i := 0; i < len(s.Y) && i < len(x); i++ {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(x[i]), py(s.Y[i])))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n",
			strings.Join(pts, " "), color)
		for i := 0; i < len(s.Y) && i < len(x); i++ {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="2.5" fill="%s"/>`+"\n",
				px(x[i]), py(s.Y[i]), color)
		}
		// Legend entry.
		ly := marginT + 4 + float64(si)*16
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="2"/>`+"\n",
			marginL+plotW-150, ly, marginL+plotW-130, ly, color)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="11">%s</text>`+"\n",
			marginL+plotW-124, ly+4, xmlEscape(s.Name))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
