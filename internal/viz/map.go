package viz

import (
	"fmt"
	"strings"
)

// MapNode is one node to draw on the cluster map.
type MapNode struct {
	// X, Y is the position in meters.
	X, Y float64
	// Head is the clusterhead ID the node belongs to (-1 = none).
	Head int
	// IsHead marks clusterheads (drawn as letters; members as lowercase).
	IsHead bool
	// Gateway marks gateway nodes (drawn with a distinguishing glyph).
	Gateway bool
}

// ClusterMap renders node positions on a character grid, one glyph per
// node: clusterheads are uppercase letters (A, B, C... assigned per
// cluster), members the matching lowercase letter, gateways '+', and
// unaffiliated nodes '?'. Useful for eyeballing the cluster structure a
// run produced.
func ClusterMap(nodes []MapNode, width, height float64, cols, rows int) string {
	if cols < 10 {
		cols = 10
	}
	if rows < 5 {
		rows = 5
	}
	if width <= 0 || height <= 0 || len(nodes) == 0 {
		return "(no map)\n"
	}
	grid := make([][]byte, rows)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cols))
	}

	// Assign letters to clusters in first-seen order.
	letters := make(map[int]byte)
	letterFor := func(head int) byte {
		if l, ok := letters[head]; ok {
			return l
		}
		l := byte('A' + len(letters)%26)
		letters[head] = l
		return l
	}

	for _, n := range nodes {
		c := clamp(int(n.X/width*float64(cols)), 0, cols-1)
		r := clamp(int(n.Y/height*float64(rows)), 0, rows-1)
		glyph := byte('?')
		switch {
		case n.Head >= 0 && n.IsHead:
			glyph = letterFor(n.Head)
		case n.Gateway:
			glyph = '+'
		case n.Head >= 0:
			glyph = letterFor(n.Head) + ('a' - 'A')
		}
		grid[r][c] = glyph
	}

	var b strings.Builder
	fmt.Fprintf(&b, "+%s+\n", strings.Repeat("-", cols))
	// Draw with Y increasing upward, like the figures.
	for r := rows - 1; r >= 0; r-- {
		fmt.Fprintf(&b, "|%s|\n", string(grid[r]))
	}
	fmt.Fprintf(&b, "+%s+\n", strings.Repeat("-", cols))
	fmt.Fprintf(&b, "%.0fx%.0f m; heads A-Z, members a-z, gateways '+', unaffiliated '?'\n",
		width, height)
	return b.String()
}
