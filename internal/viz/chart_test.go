package viz

import (
	"strings"
	"testing"
)

func TestLineChartBasics(t *testing.T) {
	x := []float64{0, 10, 20, 30}
	series := []Series{
		{Name: "rising", Y: []float64{0, 10, 20, 30}},
		{Name: "falling", Y: []float64{30, 20, 10, 0}},
	}
	out := LineChart(x, series, 40, 10, "x", "y")
	if !strings.Contains(out, "*") {
		t.Error("first series marker missing")
	}
	if !strings.Contains(out, "o") {
		t.Error("second series marker missing")
	}
	if !strings.Contains(out, "legend: *=rising o=falling") {
		t.Errorf("legend wrong:\n%s", out)
	}
	if !strings.Contains(out, "(x)") || !strings.Contains(out, "y\n") {
		t.Errorf("axis labels missing:\n%s", out)
	}
}

func TestLineChartEmpty(t *testing.T) {
	if out := LineChart(nil, nil, 40, 10, "x", "y"); out != "(no data)\n" {
		t.Errorf("empty chart = %q", out)
	}
	if out := LineChart([]float64{1}, nil, 40, 10, "x", "y"); out != "(no data)\n" {
		t.Errorf("no-series chart = %q", out)
	}
}

func TestLineChartConstantSeries(t *testing.T) {
	// Degenerate Y range must not divide by zero.
	out := LineChart([]float64{0, 1}, []Series{{Name: "flat", Y: []float64{5, 5}}}, 30, 8, "x", "y")
	if !strings.Contains(out, "*") {
		t.Errorf("constant series not drawn:\n%s", out)
	}
}

func TestLineChartSinglePoint(t *testing.T) {
	out := LineChart([]float64{7}, []Series{{Name: "pt", Y: []float64{3}}}, 30, 8, "x", "y")
	if !strings.Contains(out, "*") {
		t.Errorf("single point not drawn:\n%s", out)
	}
}

func TestLineChartMinimumDimensions(t *testing.T) {
	// Tiny requested dimensions are clamped, not crashed.
	out := LineChart([]float64{0, 1}, []Series{{Name: "s", Y: []float64{0, 1}}}, 1, 1, "x", "y")
	if len(out) == 0 {
		t.Error("clamped chart should render")
	}
}

func TestLineChartPeakPosition(t *testing.T) {
	// A unimodal curve's marker for the peak must appear on the top row.
	x := []float64{0, 1, 2, 3, 4}
	series := []Series{{Name: "peak", Y: []float64{0, 5, 10, 5, 0}}}
	out := LineChart(x, series, 41, 9, "x", "y")
	lines := strings.Split(out, "\n")
	// lines[0] is the y label; lines[1] is the top row.
	top := lines[1]
	if !strings.Contains(top, "*") {
		t.Errorf("peak not on top row:\n%s", out)
	}
	mid := strings.Index(top, "*")
	if mid < len(top)/3 || mid > 2*len(top)/3+4 {
		t.Errorf("peak marker at column %d, expected near middle:\n%s", mid, out)
	}
}

func TestLineChartInterpolationDots(t *testing.T) {
	x := []float64{0, 100}
	series := []Series{{Name: "line", Y: []float64{0, 100}}}
	out := LineChart(x, series, 50, 12, "x", "y")
	if !strings.Contains(out, ".") {
		t.Errorf("expected interpolation dots between distant points:\n%s", out)
	}
}

func TestSVGChart(t *testing.T) {
	x := []float64{0, 10, 20}
	series := []Series{
		{Name: "a", Y: []float64{1, 5, 2}},
		{Name: "b & c", Y: []float64{2, 3, 4}},
	}
	out := SVGChart(x, series, `Figure "3"`, "tx <m>", "changes")
	for _, want := range []string{
		"<svg", "</svg>", "<polyline", "<circle",
		"&quot;", "&lt;m&gt;", "b &amp; c", // escaping
		"changes", "Figure",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("svg missing %q", want)
		}
	}
	if n := strings.Count(out, "<polyline"); n != 2 {
		t.Errorf("polylines = %d, want 2", n)
	}
}

func TestSVGChartEmpty(t *testing.T) {
	out := SVGChart(nil, nil, "t", "x", "y")
	if !strings.Contains(out, "no data") || !strings.Contains(out, "</svg>") {
		t.Errorf("empty svg malformed:\n%s", out)
	}
}

func TestSVGChartConstant(t *testing.T) {
	out := SVGChart([]float64{5}, []Series{{Name: "p", Y: []float64{7}}}, "t", "x", "y")
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Errorf("degenerate ranges produced NaN/Inf:\n%s", out)
	}
}

func TestManySeriesMarkersCycle(t *testing.T) {
	x := []float64{0, 1}
	var series []Series
	for i := 0; i < 10; i++ {
		series = append(series, Series{Name: "s", Y: []float64{float64(i), float64(i)}})
	}
	out := LineChart(x, series, 30, 12, "x", "y")
	if !strings.Contains(out, "#") {
		t.Errorf("later markers missing:\n%s", out)
	}
}

func TestClampBounds(t *testing.T) {
	cases := []struct{ v, lo, hi, want int }{
		{-3, 0, 10, 0},
		{15, 0, 10, 10},
		{5, 0, 10, 5},
	}
	for _, c := range cases {
		if got := clamp(c.v, c.lo, c.hi); got != c.want {
			t.Errorf("clamp(%d, %d, %d) = %d, want %d", c.v, c.lo, c.hi, got, c.want)
		}
	}
}
