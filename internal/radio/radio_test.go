package radio

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, rel float64) bool {
	return math.Abs(a-b) <= rel*(math.Abs(a)+math.Abs(b))/2
}

func TestWavelength(t *testing.T) {
	l := Wavelength(DefaultFrequency)
	if !almostEqual(l, 0.328, 0.01) {
		t.Errorf("lambda at 914 MHz = %v, want ~0.328 m", l)
	}
}

func TestFreeSpaceInverseSquare(t *testing.T) {
	m := NewFreeSpace()
	p100 := m.RxPower(DefaultTxPower, 100)
	p200 := m.RxPower(DefaultTxPower, 200)
	if !almostEqual(p100/p200, 4, 1e-9) {
		t.Errorf("doubling distance should quarter power: ratio = %v", p100/p200)
	}
}

func TestFreeSpaceKnownValue(t *testing.T) {
	// Friis @914 MHz, Pt=0.28183815 W, d=250 m:
	// Pr = Pt*lambda^2/((4pi)^2 d^2) ~ 3.07e-9 W.
	m := NewFreeSpace()
	got := m.RxPower(DefaultTxPower, 250)
	lambda := Wavelength(DefaultFrequency)
	want := DefaultTxPower * lambda * lambda / (16 * math.Pi * math.Pi * 250 * 250)
	if !almostEqual(got, want, 1e-12) {
		t.Errorf("RxPower(250) = %g, want %g", got, want)
	}
	if got < 3.0e-9 || got > 3.2e-9 {
		t.Errorf("RxPower(250) = %g, want ~3.07e-9 W", got)
	}
}

func TestMinDistanceClamp(t *testing.T) {
	for _, m := range []Model{NewFreeSpace(), NewTwoRayGround(), NewShadowing(2.7, 0, nil)} {
		p0 := m.RxPower(DefaultTxPower, 0)
		if math.IsInf(p0, 0) || math.IsNaN(p0) {
			t.Errorf("%s: RxPower(0) = %v, want finite", m.Name(), p0)
		}
		if p0 != m.RxPower(DefaultTxPower, minDistance/2) {
			t.Errorf("%s: clamp below minDistance should be flat", m.Name())
		}
	}
}

func TestTwoRayCrossover(t *testing.T) {
	m := NewTwoRayGround()
	dc := m.Crossover()
	if dc < 80 || dc > 92 {
		t.Errorf("crossover = %v, want ~86 m for WaveLAN defaults", dc)
	}
	// Continuity at crossover: the two laws agree there by construction.
	below := m.RxPower(DefaultTxPower, dc-1e-9)
	at := m.RxPower(DefaultTxPower, dc)
	if !almostEqual(below, at, 1e-3) {
		t.Errorf("discontinuity at crossover: %g vs %g", below, at)
	}
}

func TestTwoRayFourthPowerBeyondCrossover(t *testing.T) {
	m := NewTwoRayGround()
	d := m.Crossover() + 50
	p1 := m.RxPower(DefaultTxPower, d)
	p2 := m.RxPower(DefaultTxPower, 2*d)
	if !almostEqual(p1/p2, 16, 1e-9) {
		t.Errorf("doubling distance beyond crossover should reduce power 16x, got %v", p1/p2)
	}
}

func TestTwoRayMatchesFriisBelowCrossover(t *testing.T) {
	m := NewTwoRayGround()
	f := NewFreeSpace()
	for _, d := range []float64{1, 10, 50, 80} {
		if m.RxPower(DefaultTxPower, d) != f.RxPower(DefaultTxPower, d) {
			t.Errorf("two-ray should equal Friis at d=%v (< crossover)", d)
		}
	}
}

func TestModelsMonotoneDecreasingProperty(t *testing.T) {
	models := []Model{NewFreeSpace(), NewTwoRayGround(), NewShadowing(3, 0, nil)}
	mono := func(d1Seed, d2Seed uint16) bool {
		d1 := 1 + float64(d1Seed)/100
		d2 := 1 + float64(d2Seed)/100
		if d1 > d2 {
			d1, d2 = d2, d1
		}
		for _, m := range models {
			if m.RxPower(DefaultTxPower, d1) < m.RxPower(DefaultTxPower, d2) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(mono, nil); err != nil {
		t.Error(err)
	}
}

func TestShadowingDeterministicWithoutRng(t *testing.T) {
	m := NewShadowing(2.7, 4, nil) // sigma set but no rng -> deterministic
	if m.RxPower(DefaultTxPower, 100) != m.RxPower(DefaultTxPower, 100) {
		t.Error("nil-rng shadowing should be deterministic")
	}
}

func TestShadowingMeanFollowsPowerLaw(t *testing.T) {
	m := NewShadowing(4, 0, nil)
	p1 := m.RxPower(DefaultTxPower, 10)
	p2 := m.RxPower(DefaultTxPower, 100)
	// exponent 4 over one decade: 40 dB.
	if gotDB := DB(p1 / p2); !almostEqual(gotDB, 40, 1e-6) {
		t.Errorf("decade ratio = %v dB, want 40", gotDB)
	}
}

func TestShadowingRandomnessRoughlyCentered(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	m := NewShadowing(2.7, 6, rng)
	det := NewShadowing(2.7, 6, nil)
	var sumDB float64
	const n = 4000
	for i := 0; i < n; i++ {
		sumDB += DB(m.RxPower(DefaultTxPower, 100) / det.RxPower(DefaultTxPower, 100))
	}
	meanDB := sumDB / n
	if math.Abs(meanDB) > 0.5 {
		t.Errorf("shadowing dB mean = %v, want ~0", meanDB)
	}
}

func TestNewByName(t *testing.T) {
	tests := []struct {
		name     string
		wantName string
		wantErr  bool
	}{
		{name: "freespace", wantName: "freespace"},
		{name: "tworay", wantName: "tworay"},
		{name: "", wantName: "tworay"},
		{name: "shadowing", wantName: "shadowing"},
		{name: "raytracer", wantErr: true},
	}
	for _, tt := range tests {
		m, err := New(tt.name, nil)
		if tt.wantErr {
			if err == nil {
				t.Errorf("New(%q) should error", tt.name)
			}
			continue
		}
		if err != nil {
			t.Errorf("New(%q): %v", tt.name, err)
			continue
		}
		if m.Name() != tt.wantName {
			t.Errorf("New(%q).Name() = %q, want %q", tt.name, m.Name(), tt.wantName)
		}
	}
}

func TestThresholdForRange(t *testing.T) {
	m := NewTwoRayGround()
	for _, r := range []float64{10, 50, 100, 250} {
		th, err := ThresholdForRange(m, DefaultTxPower, r)
		if err != nil {
			t.Fatalf("range %v: %v", r, err)
		}
		// At range-epsilon the signal must pass the threshold; past it, fail.
		if m.RxPower(DefaultTxPower, r-0.01) < th {
			t.Errorf("range %v: power just inside range below threshold", r)
		}
		if m.RxPower(DefaultTxPower, r+0.01) >= th {
			t.Errorf("range %v: power just outside range above threshold", r)
		}
	}
}

func TestThresholdForRangeErrors(t *testing.T) {
	m := NewFreeSpace()
	if _, err := ThresholdForRange(m, DefaultTxPower, 0); err == nil {
		t.Error("zero range should error")
	}
	if _, err := ThresholdForRange(m, DefaultTxPower, -10); err == nil {
		t.Error("negative range should error")
	}
	if _, err := ThresholdForRange(m, 0, 100); err == nil {
		t.Error("zero tx power should error")
	}
}

func TestThresholdForShadowingUsesMeanLoss(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	m := NewShadowing(2.7, 8, rng)
	th1, err := ThresholdForRange(m, DefaultTxPower, 100)
	if err != nil {
		t.Fatal(err)
	}
	th2, err := ThresholdForRange(m, DefaultTxPower, 100)
	if err != nil {
		t.Fatal(err)
	}
	if th1 != th2 {
		t.Error("threshold for shadowing should be deterministic (mean loss)")
	}
}

func TestDBRoundTrip(t *testing.T) {
	for _, db := range []float64{-30, -3, 0, 3, 10, 40} {
		if got := DB(FromDB(db)); !almostEqual(got+100, db+100, 1e-12) {
			t.Errorf("DB(FromDB(%v)) = %v", db, got)
		}
	}
	if DB(100) != 20 {
		t.Errorf("DB(100) = %v, want 20", DB(100))
	}
}

// The mobility metric depends on RxPr ratios: for two-ray beyond crossover,
// 10*log10(Pr(d1)/Pr(d2)) must equal 40*log10(d2/d1).
func TestRelativeMobilityDistanceLaw(t *testing.T) {
	m := NewTwoRayGround()
	d1, d2 := 150.0, 200.0
	gotDB := DB(m.RxPower(DefaultTxPower, d1) / m.RxPower(DefaultTxPower, d2))
	wantDB := 40 * math.Log10(d2/d1)
	if !almostEqual(gotDB, wantDB, 1e-9) {
		t.Errorf("dB ratio = %v, want %v", gotDB, wantDB)
	}
}

func BenchmarkTwoRayRxPower(b *testing.B) {
	m := NewTwoRayGround()
	b.ReportAllocs()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = m.RxPower(DefaultTxPower, float64(i%250)+1)
	}
	_ = sink
}
