// Package radio implements the physical-layer propagation models the paper's
// evaluation rests on. The mobility metric (internal/core) is computed from
// the ratio of received powers of successive hello packets, so the channel's
// power-vs-distance law is the foundation of the whole reproduction.
//
// Three models are provided, mirroring the ns-2 wireless PHY used in the
// paper:
//
//   - Friis free space (inverse-square law) — the paper's Section 3.1 ideal.
//   - Two-ray ground reflection with the Friis crossover — ns-2's default
//     for the CMU wireless extensions.
//   - Log-normal shadowing — to test the metric's robustness to a noisy
//     channel (the paper's footnote 6 excludes fading; we keep it optional).
//
// Default constants are those of ns-2's 914 MHz Lucent WaveLAN card, the
// radio the CMU extensions shipped with.
package radio

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
)

// ns-2 WaveLAN defaults.
const (
	// DefaultFrequency is the carrier frequency in Hz (914 MHz WaveLAN).
	DefaultFrequency = 914e6
	// DefaultTxPower is the transmit power in Watts (281.8 mW).
	DefaultTxPower = 0.28183815
	// DefaultAntennaGain is the unitless antenna gain (Gt = Gr = 1).
	DefaultAntennaGain = 1.0
	// DefaultAntennaHeight is the antenna height in meters (1.5 m).
	DefaultAntennaHeight = 1.5
	// DefaultSystemLoss is the unitless system loss factor (L = 1).
	DefaultSystemLoss = 1.0

	// speedOfLight in m/s.
	speedOfLight = 299792458.0

	// minDistance guards the d->0 singularity of the path-loss laws. Two
	// nodes closer than this are treated as exactly this far apart.
	minDistance = 0.1
)

// Wavelength returns the carrier wavelength in meters for a frequency in Hz.
func Wavelength(freqHz float64) float64 { return speedOfLight / freqHz }

// Model converts a transmit power and a transmitter-receiver distance into a
// received power. Implementations must be monotonically non-increasing in
// distance except for explicitly stochastic models (Shadowing).
type Model interface {
	// Name identifies the model in configs, traces and experiment output.
	Name() string
	// RxPower returns the received power in Watts at distance d meters for
	// a transmission at txPower Watts.
	RxPower(txPower, d float64) float64
}

// FreeSpace is the Friis free-space model:
//
//	Pr(d) = Pt * Gt * Gr * lambda^2 / ((4*pi)^2 * d^2 * L)
//
// This is the "ideal situation" the paper cites for its inverse-square
// dependence (Section 3.1).
type FreeSpace struct {
	// Lambda is the carrier wavelength in meters.
	Lambda float64
	// Gt, Gr are transmitter and receiver antenna gains.
	Gt, Gr float64
	// L is the system loss factor (>= 1).
	L float64
}

// NewFreeSpace returns a Friis model with ns-2 WaveLAN defaults.
func NewFreeSpace() *FreeSpace {
	return &FreeSpace{
		Lambda: Wavelength(DefaultFrequency),
		Gt:     DefaultAntennaGain,
		Gr:     DefaultAntennaGain,
		L:      DefaultSystemLoss,
	}
}

// Name implements Model.
func (m *FreeSpace) Name() string { return "freespace" }

// RxPower implements Model.
func (m *FreeSpace) RxPower(txPower, d float64) float64 {
	if d < minDistance {
		d = minDistance
	}
	den := 16 * math.Pi * math.Pi * d * d * m.L
	return txPower * m.Gt * m.Gr * m.Lambda * m.Lambda / den
}

// TwoRayGround is ns-2's two-ray ground reflection model. Below the crossover
// distance dc = 4*pi*ht*hr/lambda it degenerates to Friis; at and beyond the
// crossover:
//
//	Pr(d) = Pt * Gt * Gr * ht^2 * hr^2 / (d^4 * L)
type TwoRayGround struct {
	// Friis handles distances below the crossover.
	Friis FreeSpace
	// Ht, Hr are antenna heights in meters.
	Ht, Hr float64
}

// NewTwoRayGround returns a two-ray model with ns-2 WaveLAN defaults.
func NewTwoRayGround() *TwoRayGround {
	return &TwoRayGround{
		Friis: *NewFreeSpace(),
		Ht:    DefaultAntennaHeight,
		Hr:    DefaultAntennaHeight,
	}
}

// Name implements Model.
func (m *TwoRayGround) Name() string { return "tworay" }

// Crossover returns the distance at which the model switches from the Friis
// law to the fourth-power law. With WaveLAN defaults this is about 86 m.
func (m *TwoRayGround) Crossover() float64 {
	return 4 * math.Pi * m.Ht * m.Hr / m.Friis.Lambda
}

// RxPower implements Model.
func (m *TwoRayGround) RxPower(txPower, d float64) float64 {
	if d < minDistance {
		d = minDistance
	}
	if d < m.Crossover() {
		return m.Friis.RxPower(txPower, d)
	}
	return txPower * m.Friis.Gt * m.Friis.Gr * m.Ht * m.Ht * m.Hr * m.Hr /
		(d * d * d * d * m.Friis.L)
}

// Shadowing is the log-normal shadowing model: mean path loss follows a
// power law with exponent Beta relative to a close-in reference distance D0,
// and each reception is perturbed by a Gaussian (in dB) of standard deviation
// SigmaDB. Used by the loss-robustness ablation (the paper excludes fading
// from its study; see DESIGN.md A7).
type Shadowing struct {
	// Ref supplies the deterministic reference power at D0.
	Ref FreeSpace
	// D0 is the close-in reference distance in meters.
	D0 float64
	// Beta is the path-loss exponent (2 = free space, 2.7-5 outdoor shadowed).
	Beta float64
	// SigmaDB is the shadowing deviation in dB (0 disables randomness).
	SigmaDB float64
	// Rng drives the Gaussian draw; nil disables randomness.
	Rng *rand.Rand
}

// NewShadowing returns a shadowing model with the given exponent and sigma,
// using WaveLAN defaults for the reference.
func NewShadowing(beta, sigmaDB float64, rng *rand.Rand) *Shadowing {
	return &Shadowing{
		Ref:     *NewFreeSpace(),
		D0:      1.0,
		Beta:    beta,
		SigmaDB: sigmaDB,
		Rng:     rng,
	}
}

// Name implements Model.
func (m *Shadowing) Name() string { return "shadowing" }

// RxPower implements Model.
func (m *Shadowing) RxPower(txPower, d float64) float64 {
	if d < minDistance {
		d = minDistance
	}
	pr0 := m.Ref.RxPower(txPower, m.D0)
	meanDB := 10 * m.Beta * math.Log10(d/m.D0)
	xDB := 0.0
	if m.Rng != nil && m.SigmaDB > 0 {
		xDB = m.Rng.NormFloat64() * m.SigmaDB
	}
	return pr0 * math.Pow(10, (-meanDB+xDB)/10)
}

// ErrUnknownModel is returned by New for an unrecognized model name.
var ErrUnknownModel = errors.New("radio: unknown propagation model")

// New builds a model by name: "freespace", "tworay", or "shadowing" (with
// beta 2.7, sigma 4 dB). rng is only used by "shadowing".
func New(name string, rng *rand.Rand) (Model, error) {
	switch name {
	case "freespace":
		return NewFreeSpace(), nil
	case "tworay", "":
		return NewTwoRayGround(), nil
	case "shadowing":
		return NewShadowing(2.7, 4.0, rng), nil
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
}

// ThresholdForRange returns the receive-power threshold (Watts) that makes
// the given deterministic model deliver packets out to exactly wantRange
// meters at txPower: the power received at wantRange. This mirrors ns-2's
// threshold.cc utility that the CMU extensions shipped for calibrating
// RXThresh to a desired transmission range.
//
// For stochastic models it returns the threshold of the mean path loss.
func ThresholdForRange(m Model, txPower, wantRange float64) (float64, error) {
	if wantRange <= 0 {
		return 0, fmt.Errorf("radio: non-positive range %g", wantRange)
	}
	if txPower <= 0 {
		return 0, fmt.Errorf("radio: non-positive tx power %g", txPower)
	}
	if sh, ok := m.(*Shadowing); ok {
		mean := *sh
		mean.Rng = nil
		return mean.RxPower(txPower, wantRange), nil
	}
	return m.RxPower(txPower, wantRange), nil
}

// DB converts a power ratio to decibels: 10*log10(ratio).
func DB(ratio float64) float64 { return 10 * math.Log10(ratio) }

// FromDB converts decibels to a power ratio.
func FromDB(db float64) float64 { return math.Pow(10, db/10) }
