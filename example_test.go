package mobic_test

import (
	"fmt"
	"log"

	"mobic"
)

// The paper's equation 1: relative mobility from two successive received
// powers. A power that doubled means the neighbor closed in by ~3 dB.
func ExampleRelativeMobility() {
	closing, err := mobic.RelativeMobility(1e-9, 2e-9)
	if err != nil {
		log.Fatal(err)
	}
	parting, err := mobic.RelativeMobility(2e-9, 1e-9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("closing in: %+.2f dB\n", closing)
	fmt.Printf("drifting away: %+.2f dB\n", parting)
	// Output:
	// closing in: +3.01 dB
	// drifting away: -3.01 dB
}

// The paper's equation 2: the aggregate local mobility is the variance
// about zero of the pairwise samples — a node whose neighbors barely move
// relative to it scores near zero and makes a good clusterhead.
func ExampleAggregateLocalMobility() {
	calm := mobic.AggregateLocalMobility([]float64{0.1, -0.2, 0.15})
	busy := mobic.AggregateLocalMobility([]float64{3.5, -4.2, 2.8})
	fmt.Printf("calm neighborhood:   M = %.3f\n", calm)
	fmt.Printf("mobile neighborhood: M = %.2f\n", busy)
	// Output:
	// calm neighborhood:   M = 0.024
	// mobile neighborhood: M = 12.58
}

// Compare runs two algorithms on identical node movement. MOBIC's whole
// point is fewer clusterhead changes than Lowest-ID at realistic ranges.
func ExampleCompare() {
	s := mobic.PaperScenario(250) // Table 1 defaults at Tx = 250 m
	s.Duration = 300              // trimmed for example speed

	byAlg, err := mobic.Compare(s, "lcc", "mobic")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("MOBIC more stable:",
		byAlg["mobic"].ClusterheadChanges < byAlg["lcc"].ClusterheadChanges)
	// Output:
	// MOBIC more stable: true
}

// Run executes a single scenario; the zero-valued fields take the paper's
// Table 1 defaults.
func ExampleRun() {
	s := mobic.Scenario{TxRange: 150, Duration: 120, Nodes: 20}
	res, err := mobic.Run(s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("algorithm:", res.Algorithm)
	fmt.Println("formed clusters:", res.FinalClusterheads > 0)
	// Output:
	// algorithm: mobic
	// formed clusters: true
}
