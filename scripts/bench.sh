#!/bin/sh
# bench.sh — run the whole Benchmark* suite once (-benchtime=1x) and feed it
# to the benchgate regression gate.
#
#   scripts/bench.sh baseline   rewrite BENCH_harness.json from this machine
#   scripts/bench.sh check      compare against the committed baseline
#                               (default; exit 1 on regression)
#
# Tolerances come from BENCH_NS_TOL / BENCH_ALLOC_TOL (see cmd/benchgate).
set -eu
cd "$(dirname "$0")/.."

mode="${1:-check}"
out=BENCH_harness.json

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

echo "== go test -run=NONE -bench=. -benchtime=1x ./..."
go test -run=NONE -bench=. -benchtime=1x ./... | tee "$tmp"

case "$mode" in
baseline)
    go run ./cmd/benchgate -emit -file "$out" <"$tmp"
    ;;
check)
    go run ./cmd/benchgate -check -file "$out" <"$tmp"
    ;;
*)
    echo "usage: $0 [baseline|check]" >&2
    exit 2
    ;;
esac
