#!/bin/sh
# bench.sh — run the Benchmark* suite once (-benchtime=1x) and feed it to the
# benchgate regression gate, in two tiers:
#
#   engine   internal/sim, internal/spatial, internal/simnet — the per-beacon
#            hot path. Gated against BENCH_engine.json with a tight
#            allocation tolerance: the pooled-event/zero-alloc design is a
#            pinned property of the engine, not a best effort.
#   harness  everything else (experiment suite, service, substrates), gated
#            against BENCH_harness.json with the default tolerances.
#
#   scripts/bench.sh baseline   rewrite both baselines from this machine
#   scripts/bench.sh check      compare against the committed baselines
#                               (default; exit 1 on regression)
#
# Tolerances come from BENCH_NS_TOL / BENCH_ALLOC_TOL (see cmd/benchgate);
# BENCH_ENGINE_ALLOC_TOL (default 0.10) tightens the engine alloc gate.
set -eu
cd "$(dirname "$0")/.."

mode="${1:-check}"

engine_pkgs="./internal/sim ./internal/spatial ./internal/simnet"
harness_pkgs="$(go list ./... | grep -v \
    -e '/internal/sim$' -e '/internal/spatial$' -e '/internal/simnet$')"

tmp_engine="$(mktemp)"
tmp_harness="$(mktemp)"
trap 'rm -f "$tmp_engine" "$tmp_harness"' EXIT

echo "== engine: go test -run=NONE -bench=. -benchtime=1x $engine_pkgs"
go test -run=NONE -bench=. -benchtime=1x $engine_pkgs | tee "$tmp_engine"
echo "== harness: go test -run=NONE -bench=. -benchtime=1x <remaining packages>"
go test -run=NONE -bench=. -benchtime=1x $harness_pkgs | tee "$tmp_harness"

case "$mode" in
baseline)
    go run ./cmd/benchgate -emit -file BENCH_engine.json <"$tmp_engine"
    go run ./cmd/benchgate -emit -file BENCH_harness.json <"$tmp_harness"
    ;;
check)
    go run ./cmd/benchgate -check -file BENCH_engine.json \
        -alloc-tol "${BENCH_ENGINE_ALLOC_TOL:-0.10}" <"$tmp_engine"
    go run ./cmd/benchgate -check -file BENCH_harness.json <"$tmp_harness"
    ;;
*)
    echo "usage: $0 [baseline|check]" >&2
    exit 2
    ;;
esac
