#!/bin/sh
# check.sh — the full pre-merge gate: formatting, static analysis, the whole
# test suite under the race detector, and the benchmark regression gate.
# Run via `make check` or directly.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt -l"
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet tag matrix (race off / race on)"
# The engine carries //go:build race / !race files (raceEnabled const); vet
# both halves so neither bitrots.
go vet ./...
go vet -tags race ./...

echo "== go test -race ./..."
go test -race ./...

echo "== coverage gate (floor: COVERAGE.txt)"
floor="$(cat COVERAGE.txt)"
go test -count=1 -coverprofile=coverage.out ./... > /dev/null
total="$(go tool cover -func=coverage.out | awk '/^total:/ {sub(/%/, "", $NF); print $NF}')"
echo "total coverage: ${total}% (floor ${floor}%)"
awk -v t="$total" -v f="$floor" 'BEGIN { exit (t+0 >= f+0) ? 0 : 1 }' || {
    echo "coverage ${total}% fell below the ${floor}% floor in COVERAGE.txt" >&2
    exit 1
}

echo "== chaos soak (10s of seeded faults + a mid-soak worker kill, under -race)"
go test -race -run='^TestChaosSoak$' -count=1 -v ./internal/dispatch | grep -E '^(=== RUN|--- (PASS|FAIL)|    chaos_soak|PASS|FAIL|ok)'

echo "== tiled-scheduler race soak (explicit pass; also runs inside -race above)"
go test -race -run='^TestTiledSchedulerRaceSoak$|^TestTiledMatchesSequential$' -count=1 -v ./internal/simnet | grep -E '^(=== RUN|--- (PASS|FAIL)|PASS|FAIL|ok)'

echo "== allocation regression (hot path must stay zero-alloc, bare and instrumented; skipped under -race above)"
go test -run='^TestSteadyStateTickAllocs' -count=1 -v ./internal/simnet | grep -E 'PASS|FAIL|allocates'

echo "== fuzz smoke (5s per target, seeded from checked-in corpora)"
go test -run='^$' -fuzz='^FuzzSpec$' -fuzztime=5s ./internal/service
go test -run='^$' -fuzz='^FuzzSpecDigest$' -fuzztime=5s ./internal/service
go test -run='^$' -fuzz='^FuzzJournalReplay$' -fuzztime=5s ./internal/service
go test -run='^$' -fuzz='^FuzzEngineInvariants$' -fuzztime=5s ./internal/cluster
go test -run='^$' -fuzz='^FuzzTilePartition$' -fuzztime=5s ./internal/spatial
go test -run='^$' -fuzz='^FuzzChaosSchedule$' -fuzztime=5s ./internal/chaos
go test -run='^$' -fuzz='^FuzzTenantConfig$' -fuzztime=5s ./internal/fair
go test -run='^$' -fuzz='^FuzzBatchBody$' -fuzztime=5s ./internal/service
go test -run='^$' -fuzz='^FuzzEnergyConfig$' -fuzztime=5s ./internal/energy
go test -run='^$' -fuzz='^FuzzAdaptiveBI$' -fuzztime=5s ./internal/simnet

echo "== golden digest inventory (base grid + policy runs, 2 seeds each)"
digests="$(grep -c '"sha256"' internal/harness/testdata/digests.json)"
echo "pinned trace digests: ${digests}"
if [ "$digests" -ne 24 ]; then
    echo "expected 24 pinned golden digests (9 base grid pairs + 3 policy runs, x2 seeds), found ${digests}" >&2
    echo "if a workload or policy was added deliberately, update this assertion" >&2
    exit 1
fi

echo "== loadgen fairness smoke (2 tenants at 4:1 weights, embedded service)"
go run ./cmd/loadgen -tenants heavy:4,light:1 -clients 4 -warmup 500ms \
    -duration 3s -job-ms 10 -tolerance 0.25

echo "== benchmark smoke + regression gate"
./scripts/bench.sh check

echo "ok"
