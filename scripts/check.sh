#!/bin/sh
# check.sh — the full pre-merge gate: formatting, static analysis, the whole
# test suite under the race detector, and the benchmark regression gate.
# Run via `make check` or directly.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt -l"
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== go test -race ./..."
go test -race ./...

echo "== allocation regression (hot path must stay zero-alloc; skipped under -race above)"
go test -run='^TestSteadyStateTickAllocs$' -count=1 -v ./internal/simnet | grep -E 'PASS|FAIL|allocates'

echo "== fuzz smoke (5s per target, seeded from checked-in corpora)"
go test -run='^$' -fuzz='^FuzzSpec$' -fuzztime=5s ./internal/service
go test -run='^$' -fuzz='^FuzzJournalReplay$' -fuzztime=5s ./internal/service
go test -run='^$' -fuzz='^FuzzEngineInvariants$' -fuzztime=5s ./internal/cluster

echo "== benchmark smoke + regression gate"
./scripts/bench.sh check

echo "ok"
