#!/bin/sh
# check.sh — the full pre-merge gate: static analysis plus the whole test
# suite under the race detector. Run via `make check` or directly.
set -eu
cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go test -race ./..."
go test -race ./...

echo "ok"
