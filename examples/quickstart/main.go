// Quickstart: reproduce the paper's headline claim in one screenful.
//
// Runs the paper's Figure 3 workload (50 nodes, 670x670 m, random waypoint
// at up to 20 m/s) at Tx = 250 m under the Lowest-ID (LCC) baseline and
// MOBIC, on the *same* node movement, and reports the reduction in
// clusterhead changes (the paper reports up to 33%).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mobic"
)

func main() {
	scenario := mobic.PaperScenario(250) // Table 1 defaults, Tx = 250 m

	byAlg, err := mobic.Compare(scenario, "lcc", "mobic")
	if err != nil {
		log.Fatal(err)
	}
	lcc, mob := byAlg["lcc"], byAlg["mobic"]

	fmt.Println("MOBIC quickstart — paper Figure 3 at Tx = 250 m")
	fmt.Println()
	fmt.Printf("%-22s %12s %12s\n", "", "lowest-id", "mobic")
	fmt.Printf("%-22s %12d %12d\n", "clusterhead changes", lcc.ClusterheadChanges, mob.ClusterheadChanges)
	fmt.Printf("%-22s %12.1f %12.1f\n", "avg clusters", lcc.AvgClusters, mob.AvgClusters)
	fmt.Printf("%-22s %12.1f %12.1f\n", "CH tenure (s)", lcc.MeanResidenceSeconds, mob.MeanResidenceSeconds)
	fmt.Println()

	gain := 100 * (1 - float64(mob.ClusterheadChanges)/float64(lcc.ClusterheadChanges))
	fmt.Printf("MOBIC reduces clusterhead changes by %.0f%% (paper: up to 33%%).\n", gain)
	fmt.Println("Both runs used identical node movement; only the election weight differs.")
}
