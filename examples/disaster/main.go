// Disaster relief: the Reference Point Group Mobility scenario from the
// paper's Section 2.2 (and the traditional motivation of Section 1).
//
// Six rescue squads of eight nodes each sweep a 1500x1500 m zone. Each
// squad moves as a coherent group (RPGM): members barely move relative to
// each other while squads pass each other at speed. A relative-mobility
// metric should keep each squad's clusters intact through inter-squad
// encounters; ID-based clustering reshuffles whenever squads mingle.
//
//	go run ./examples/disaster
package main

import (
	"fmt"
	"log"
	"sort"

	"mobic"
)

func main() {
	scenario := mobic.Scenario{
		Nodes:    48,
		Width:    1500,
		Height:   1500,
		Duration: 900,
		TxRange:  200,
		Seed:     5,
		Mobility: mobic.MobilitySpec{
			Model:       "rpgm",
			Groups:      6,
			GroupRadius: 80,
			MaxSpeed:    10,
			Pause:       20,
			LocalJitter: 8,
		},
	}

	fmt.Println("Disaster-relief scenario — 6 squads x 8 nodes, RPGM, Tx 200 m")
	fmt.Println()

	byAlg, err := mobic.Compare(scenario, "lcc", "mobic")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-10s %12s %14s %14s\n", "algorithm", "CH changes", "avg clusters", "CH tenure (s)")
	for _, name := range []string{"lcc", "mobic"} {
		r := byAlg[name]
		fmt.Printf("%-10s %12d %14.1f %14.1f\n",
			name, r.ClusterheadChanges, r.AvgClusters, r.MeanResidenceSeconds)
	}

	// Check cluster/squad alignment under MOBIC: members are dealt to
	// squads round-robin (node i belongs to squad i % 6), so a cluster
	// whose members share i%6 is squad-pure.
	scenario.Algorithm = "mobic"
	_, nodes, err := mobic.Inspect(scenario)
	if err != nil {
		log.Fatal(err)
	}
	clusters := make(map[int][]int)
	for _, n := range nodes {
		clusters[n.Head] = append(clusters[n.Head], n.ID)
	}
	pure := 0
	heads := make([]int, 0, len(clusters))
	for h := range clusters {
		heads = append(heads, h)
	}
	sort.Ints(heads)
	fmt.Println("\nFinal MOBIC clusters vs squads (squad = node ID mod 6):")
	for _, h := range heads {
		ids := clusters[h]
		squads := map[int]bool{}
		for _, id := range ids {
			squads[id%6] = true
		}
		if len(squads) == 1 {
			pure++
		}
		fmt.Printf("  head %2d: %2d members across %d squad(s)\n", h, len(ids), len(squads))
	}
	fmt.Printf("%d/%d clusters are squad-pure.\n", pure, len(clusters))
}
