// Routing: the paper's Section 5 integration — a CBRP-lite cluster-based
// routing protocol running on top of MOBIC clusters, inside the simulator.
//
// This is the "advanced" example: unlike the other examples it reaches past
// the public facade into the library's internal packages to wire a custom
// application (the routing protocol) into the simulation, the way a
// downstream research fork would.
//
//	go run ./examples/routing
package main

import (
	"fmt"
	"log"

	"mobic/internal/cbrp"
	"mobic/internal/cluster"
	"mobic/internal/geom"
	"mobic/internal/mobility"
	"mobic/internal/simnet"
)

func main() {
	fmt.Println("CBRP-lite over MOBIC — 50 nodes, 670x670 m, Tx 250 m, 10 flows")
	fmt.Println()
	fmt.Printf("%-18s %8s %10s %10s %10s %8s\n",
		"variant", "PDR(%)", "ctrl tx", "breaks", "disc", "lat(ms)")

	for _, v := range []struct {
		name string
		alg  cluster.Algorithm
		flat bool
	}{
		{name: "lcc backbone", alg: cluster.LCC},
		{name: "mobic backbone", alg: cluster.MOBIC},
		{name: "mobic flat-flood", alg: cluster.MOBIC, flat: true},
	} {
		st, err := runOnce(v.alg, v.flat)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %8.1f %10d %10d %10d %8.1f\n",
			v.name, 100*st.DeliveryRatio(), st.ControlTx(), st.RouteBreaks,
			st.Discoveries, 1000*st.MeanDiscoveryLatency())
	}
	fmt.Println("\nThe cluster backbone cuts route-request flooding by ~30% at the")
	fmt.Println("same delivery ratio; discovery latency stays in the same band.")
}

func runOnce(alg cluster.Algorithm, flat bool) (cbrp.Stats, error) {
	proto := cbrp.New(cbrp.Config{Flows: 10, DataInterval: 4, FlatFlooding: flat})
	area := geom.Square(670)
	cfg := simnet.Config{
		N:         50,
		Area:      area,
		Duration:  900,
		Seed:      3,
		Algorithm: alg,
		Mobility:  &mobility.RandomWaypoint{Area: area, MaxSpeed: 20},
		TxRange:   250,
		Apps:      []simnet.App{proto},
	}
	net, err := simnet.New(cfg)
	if err != nil {
		return cbrp.Stats{}, err
	}
	if _, err := net.Run(); err != nil {
		return cbrp.Stats{}, err
	}
	return proto.Stats(), nil
}
