// Conference: the paper's Section 5 indoor scenario.
//
// Sixty attendees fill a 60x60 m hall. Most sit almost still; a minority
// wander between groups. The paper argues MOBIC shines here because the
// seated majority have near-zero relative mobility and make ideal
// clusterheads, while a low-ID wanderer under Lowest-ID drags its cluster
// around the room. Note GPS is useless indoors — exactly why the paper's
// metric uses received signal strength only.
//
//	go run ./examples/conference
package main

import (
	"fmt"
	"log"

	"mobic"
)

func main() {
	scenario := mobic.Scenario{
		Nodes:    60,
		Width:    60,
		Height:   60,
		Duration: 900,
		TxRange:  15, // short indoor range, several clusters across the hall
		Seed:     11,
		Mobility: mobic.MobilitySpec{
			Model:            "conference",
			MaxSpeed:         1.2, // walking pace
			Pause:            45,  // chat stops
			WandererFraction: 0.25,
		},
	}

	fmt.Println("Conference scenario — 60 attendees, 60x60 m hall, Tx 15 m")
	fmt.Println("25% of attendees wander at walking pace; the rest are seated.")
	fmt.Println()

	byAlg, err := mobic.Compare(scenario, "lcc", "mobic")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-10s %12s %14s %14s\n", "algorithm", "CH changes", "avg clusters", "CH tenure (s)")
	for _, name := range []string{"lcc", "mobic"} {
		r := byAlg[name]
		fmt.Printf("%-10s %12d %14.1f %14.1f\n",
			name, r.ClusterheadChanges, r.AvgClusters, r.MeanResidenceSeconds)
	}

	// Under MOBIC, are the clusterheads actually the seated attendees?
	scenario.Algorithm = "mobic"
	_, nodes, err := mobic.Inspect(scenario)
	if err != nil {
		log.Fatal(err)
	}
	var headM, memberM float64
	var headN, memberN int
	for _, n := range nodes {
		switch n.Role {
		case "head":
			headM += n.M
			headN++
		case "member":
			memberM += n.M
			memberN++
		}
	}
	if headN > 0 && memberN > 0 {
		fmt.Printf("\nMOBIC selection check: mean M of heads %.3f vs members %.3f\n",
			headM/float64(headN), memberM/float64(memberN))
		fmt.Println("(lower M = less mobile; heads should be the calmer nodes)")
	}
}
