// Replay: drive the simulator from artifact files, the workflow a
// measurement study would use — a JSON scenario plus a CMU/ns-2 `setdest`
// movement file, so the exact same movement can be replayed under different
// algorithms (or exported to ns-2 itself).
//
//	go run ./examples/replay
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"mobic"
)

func main() {
	dir, err := os.MkdirTemp("", "mobic-replay")
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := os.RemoveAll(dir); err != nil {
			log.Printf("cleanup: %v", err)
		}
	}()

	// 1. Build a scenario and archive both its config and its exact node
	// movement.
	scenario := mobic.PaperScenario(200)
	scenario.Duration = 300
	configPath := filepath.Join(dir, "scenario.json")
	movementPath := filepath.Join(dir, "movement.tcl")
	if err := mobic.SaveScenario(configPath, scenario); err != nil {
		log.Fatal(err)
	}
	if err := mobic.ExportMovement(scenario, movementPath); err != nil {
		log.Fatal(err)
	}
	fmt.Println("archived", configPath)
	fmt.Println("archived", movementPath, "(ns-2 setdest format)")

	// 2. Reload the scenario and replay the archived movement under every
	// algorithm — identical topology dynamics, different elections.
	loaded, err := mobic.LoadScenario(configPath)
	if err != nil {
		log.Fatal(err)
	}
	loaded.MovementFile = movementPath

	fmt.Printf("\n%-18s %12s %14s %14s\n", "algorithm", "CH changes", "avg clusters", "CH tenure (s)")
	for _, alg := range []string{"lowest-id", "lcc", "mobic", "mobic-pairhistory"} {
		s := loaded
		s.Algorithm = alg
		res, err := mobic.Run(s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %12d %14.1f %14.1f\n",
			alg, res.ClusterheadChanges, res.AvgClusters, res.MeanResidenceSeconds)
	}
	fmt.Println("\nEvery row replayed the byte-identical movement file.")
}
