// Highway: the paper's Section 5 vehicular scenario.
//
// Forty cars cruise a 3 km, four-lane highway at 20-33 m/s. Absolute speeds
// are high but relative mobility between same-direction cars is low — the
// regime the paper predicts MOBIC will exploit, because received-power
// ratios between platooning cars barely change while IDs say nothing about
// who is a stable neighbor.
//
//	go run ./examples/highway
package main

import (
	"fmt"
	"log"
	"sort"

	"mobic"
)

func main() {
	scenario := mobic.Scenario{
		Nodes:    40,
		Width:    3000, // highway length in meters
		Duration: 600,
		TxRange:  250,
		Seed:     7,
		Mobility: mobic.MobilitySpec{
			Model:       "highway",
			Lanes:       4,
			LaneWidth:   5,
			MinSpeed:    20,
			MaxSpeed:    33,
			SpeedJitter: 0.1,
		},
	}

	fmt.Println("Highway scenario — 40 cars, 4 lanes, 3 km, 20-33 m/s, Tx 250 m")
	fmt.Println()

	byAlg, err := mobic.Compare(scenario, "lowest-id", "lcc", "mobic")
	if err != nil {
		log.Fatal(err)
	}
	names := []string{"lowest-id", "lcc", "mobic"}
	fmt.Printf("%-12s %12s %14s %14s\n", "algorithm", "CH changes", "avg clusters", "CH tenure (s)")
	for _, name := range names {
		r := byAlg[name]
		fmt.Printf("%-12s %12d %14.1f %14.1f\n",
			name, r.ClusterheadChanges, r.AvgClusters, r.MeanResidenceSeconds)
	}

	// Show the final platoons under MOBIC.
	scenario.Algorithm = "mobic"
	_, nodes, err := mobic.Inspect(scenario)
	if err != nil {
		log.Fatal(err)
	}
	clusters := make(map[int][]mobic.NodeInfo)
	for _, n := range nodes {
		clusters[n.Head] = append(clusters[n.Head], n)
	}
	heads := make([]int, 0, len(clusters))
	for h := range clusters {
		heads = append(heads, h)
	}
	sort.Ints(heads)

	fmt.Println("\nFinal MOBIC platoons (clusters along the road):")
	for _, h := range heads {
		members := clusters[h]
		sort.Slice(members, func(i, j int) bool { return members[i].X < members[j].X })
		lo, hi := members[0].X, members[len(members)-1].X
		fmt.Printf("  head %2d: %2d cars spanning %6.0f-%6.0f m\n", h, len(members), lo, hi)
	}
}
