// Package mobic is a stdlib-only Go reproduction of "A Mobility Based
// Metric for Clustering in Mobile Ad Hoc Networks" (P. Basu, N. Khan,
// T.D.C. Little — ICDCS 2001 Workshops).
//
// The library contains a complete discrete-event MANET simulator (mobility
// models, radio propagation, hello beaconing with neighbor timeouts) and
// five distributed 2-hop clustering algorithms on top of it:
//
//   - MOBIC, the paper's contribution: clusterheads are the nodes with the
//     lowest aggregate local mobility, measured purely from the ratio of
//     received powers of successive hello packets — no GPS, no velocity
//     knowledge.
//   - Lowest-ID and LCC ("least clusterhead change"), the baselines.
//   - Max-connectivity (highest degree) and DCA (generic weights).
//
// # Quick start
//
//	res, err := mobic.Run(mobic.PaperScenario(250))
//	if err != nil { ... }
//	fmt.Println(res.ClusterheadChanges)
//
// Compare algorithms on an identical scenario (same seed, same movement):
//
//	byAlg, err := mobic.Compare(mobic.PaperScenario(250), "lcc", "mobic")
//
// The full evaluation harness that regenerates every table and figure of
// the paper lives in cmd/experiments; per-package simulation building
// blocks live under internal/ (see DESIGN.md for the system inventory).
package mobic
