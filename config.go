package mobic

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"mobic/internal/mobility"
	"mobic/internal/sim"
)

// scenarioFile is the on-disk JSON schema for a Scenario. Field names are
// stable and lowercase; zero values fall back to Table 1 defaults exactly
// like the in-memory Scenario.
type scenarioFile struct {
	Nodes              int          `json:"nodes,omitempty"`
	Width              float64      `json:"width,omitempty"`
	Height             float64      `json:"height,omitempty"`
	Duration           float64      `json:"duration,omitempty"`
	Seed               uint64       `json:"seed,omitempty"`
	Algorithm          string       `json:"algorithm,omitempty"`
	TxRange            float64      `json:"tx_range"`
	Mobility           mobilityFile `json:"mobility,omitempty"`
	BroadcastInterval  float64      `json:"broadcast_interval,omitempty"`
	BIMin              float64      `json:"bi_min,omitempty"`
	BIMax              float64      `json:"bi_max,omitempty"`
	EnergyJ            float64      `json:"energy_j,omitempty"`
	TimeoutPeriod      float64      `json:"timeout_period,omitempty"`
	ContentionInterval float64      `json:"contention_interval,omitempty"`
	Warmup             float64      `json:"warmup,omitempty"`
	Propagation        string       `json:"propagation,omitempty"`
	LossRate           float64      `json:"loss_rate,omitempty"`
	MovementFile       string       `json:"movement_file,omitempty"`
}

type mobilityFile struct {
	Model            string  `json:"model,omitempty"`
	MinSpeed         float64 `json:"min_speed,omitempty"`
	MaxSpeed         float64 `json:"max_speed,omitempty"`
	Pause            float64 `json:"pause,omitempty"`
	Groups           int     `json:"groups,omitempty"`
	GroupRadius      float64 `json:"group_radius,omitempty"`
	LocalJitter      float64 `json:"local_jitter,omitempty"`
	Lanes            int     `json:"lanes,omitempty"`
	LaneWidth        float64 `json:"lane_width,omitempty"`
	SpeedJitter      float64 `json:"speed_jitter,omitempty"`
	Bidirectional    bool    `json:"bidirectional,omitempty"`
	WandererFraction float64 `json:"wanderer_fraction,omitempty"`
	Blocks           int     `json:"blocks,omitempty"`
	TurnProb         float64 `json:"turn_prob,omitempty"`
	SteadyState      bool    `json:"steady_state,omitempty"`
}

func toFile(s Scenario) scenarioFile {
	return scenarioFile{
		Nodes:              s.Nodes,
		Width:              s.Width,
		Height:             s.Height,
		Duration:           s.Duration,
		Seed:               s.Seed,
		Algorithm:          s.Algorithm,
		TxRange:            s.TxRange,
		BroadcastInterval:  s.BroadcastInterval,
		BIMin:              s.BIMin,
		BIMax:              s.BIMax,
		EnergyJ:            s.EnergyJ,
		TimeoutPeriod:      s.TimeoutPeriod,
		ContentionInterval: s.ContentionInterval,
		Warmup:             s.Warmup,
		Propagation:        s.Propagation,
		LossRate:           s.LossRate,
		MovementFile:       s.MovementFile,
		Mobility: mobilityFile{
			Model:            s.Mobility.Model,
			MinSpeed:         s.Mobility.MinSpeed,
			MaxSpeed:         s.Mobility.MaxSpeed,
			Pause:            s.Mobility.Pause,
			Groups:           s.Mobility.Groups,
			GroupRadius:      s.Mobility.GroupRadius,
			LocalJitter:      s.Mobility.LocalJitter,
			Lanes:            s.Mobility.Lanes,
			LaneWidth:        s.Mobility.LaneWidth,
			SpeedJitter:      s.Mobility.SpeedJitter,
			Bidirectional:    s.Mobility.Bidirectional,
			WandererFraction: s.Mobility.WandererFraction,
			Blocks:           s.Mobility.Blocks,
			TurnProb:         s.Mobility.TurnProb,
			SteadyState:      s.Mobility.SteadyState,
		},
	}
}

func fromFile(f scenarioFile) Scenario {
	return Scenario{
		Nodes:              f.Nodes,
		Width:              f.Width,
		Height:             f.Height,
		Duration:           f.Duration,
		Seed:               f.Seed,
		Algorithm:          f.Algorithm,
		TxRange:            f.TxRange,
		BroadcastInterval:  f.BroadcastInterval,
		BIMin:              f.BIMin,
		BIMax:              f.BIMax,
		EnergyJ:            f.EnergyJ,
		TimeoutPeriod:      f.TimeoutPeriod,
		ContentionInterval: f.ContentionInterval,
		Warmup:             f.Warmup,
		Propagation:        f.Propagation,
		LossRate:           f.LossRate,
		MovementFile:       f.MovementFile,
		Mobility: MobilitySpec{
			Model:            f.Mobility.Model,
			MinSpeed:         f.Mobility.MinSpeed,
			MaxSpeed:         f.Mobility.MaxSpeed,
			Pause:            f.Mobility.Pause,
			Groups:           f.Mobility.Groups,
			GroupRadius:      f.Mobility.GroupRadius,
			LocalJitter:      f.Mobility.LocalJitter,
			Lanes:            f.Mobility.Lanes,
			LaneWidth:        f.Mobility.LaneWidth,
			SpeedJitter:      f.Mobility.SpeedJitter,
			Bidirectional:    f.Mobility.Bidirectional,
			WandererFraction: f.Mobility.WandererFraction,
			Blocks:           f.Mobility.Blocks,
			TurnProb:         f.Mobility.TurnProb,
			SteadyState:      f.Mobility.SteadyState,
		},
	}
}

// MarshalScenario encodes a scenario as indented JSON.
func MarshalScenario(s Scenario) ([]byte, error) {
	return json.MarshalIndent(toFile(s), "", "  ")
}

// UnmarshalScenario decodes a scenario from JSON, rejecting unknown fields
// so typos in hand-written configs fail loudly instead of silently taking
// defaults.
func UnmarshalScenario(data []byte) (Scenario, error) {
	var f scenarioFile
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return Scenario{}, fmt.Errorf("mobic: parsing scenario: %w", err)
	}
	return fromFile(f), nil
}

// ExportMovement generates the scenario's node movement and writes it as a
// CMU/ns-2 `setdest` movement file, so scenarios built here can drive other
// simulators (and be archived alongside results).
func ExportMovement(s Scenario, path string) error {
	cfg, err := s.config()
	if err != nil {
		return err
	}
	trs, err := cfg.Mobility.Generate(cfg.N, cfg.Duration, sim.NewStreams(cfg.Seed))
	if err != nil {
		return fmt.Errorf("mobic: generating movement: %w", err)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("mobic: creating movement file: %w", err)
	}
	err = mobility.WriteNS2(f, trs)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("mobic: writing movement file: %w", err)
	}
	return nil
}

// LoadScenario reads a scenario JSON file.
func LoadScenario(path string) (Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Scenario{}, fmt.Errorf("mobic: reading scenario: %w", err)
	}
	return UnmarshalScenario(data)
}

// SaveScenario writes a scenario JSON file.
func SaveScenario(path string, s Scenario) error {
	data, err := MarshalScenario(s)
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("mobic: writing scenario: %w", err)
	}
	return nil
}
