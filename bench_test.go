// Benchmarks regenerating every table and figure of the paper (and the
// DESIGN.md ablations) as testing.B benchmarks. Each iteration executes the
// corresponding experiment end to end on a trimmed configuration (one seed,
// 300 simulated seconds) so `go test -bench=.` finishes in minutes; the
// full-fidelity regeneration (Table 1 parameters, 900 s, multiple seeds) is
// `go run ./cmd/experiments -exp paper -seeds 5`.
//
// Custom metrics reported per bench make the reproduced shape visible right
// in the benchmark output: CH change counts for the two algorithms at the
// sweep's endpoint and the headline gain percentage.
package mobic_test

import (
	"context"
	"errors"
	"runtime"
	"testing"

	"mobic"
	"mobic/internal/experiment"
	"mobic/internal/harness"
	"mobic/internal/service"
	"mobic/internal/simnet"
	"mobic/internal/trace"
)

// benchRunner trims experiment cells so a bench iteration is seconds, not
// minutes, while exercising the identical code path as cmd/experiments.
func benchRunner() experiment.Runner {
	return experiment.Runner{
		Seeds:    1,
		BaseSeed: 1,
		Mutate:   func(cfg *simnet.Config) { cfg.Duration = 300 },
	}
}

// reportEndpointGain attaches the last-X-point values of the first two
// series plus MOBIC's relative gain, so `-bench` output shows the
// reproduced result.
func reportEndpointGain(b *testing.B, res *experiment.Result) {
	b.Helper()
	if len(res.Series) < 2 || len(res.X) == 0 {
		return
	}
	last := len(res.X) - 1
	base := res.Series[0].Y[last]
	ours := res.Series[1].Y[last]
	b.ReportMetric(base, "baseline_CH")
	b.ReportMetric(ours, "mobic_CH")
	if base > 0 {
		b.ReportMetric(100*(1-ours/base), "gain_%")
	}
}

func runExperimentBench(b *testing.B, run func(context.Context, experiment.Runner) (*experiment.Result, error)) {
	b.Helper()
	b.ReportAllocs()
	var last *experiment.Result
	for i := 0; i < b.N; i++ {
		res, err := run(context.Background(), benchRunner())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	reportEndpointGain(b, last)
}

// BenchmarkTable1Scenario regenerates Table 1 (parameter echo plus one full
// materialization of the base scenario config per iteration).
func BenchmarkTable1Scenario(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Table1(context.Background(), experiment.Runner{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3ClusterheadChanges regenerates Figure 3: CH changes vs Tx on
// the 670x670 m scenario, Lowest-ID(LCC) vs MOBIC.
func BenchmarkFig3ClusterheadChanges(b *testing.B) {
	runExperimentBench(b, experiment.Fig3)
}

// BenchmarkFig4ClusterCount regenerates Figure 4: number of clusters vs Tx.
func BenchmarkFig4ClusterCount(b *testing.B) {
	b.ReportAllocs()
	var last *experiment.Result
	for i := 0; i < b.N; i++ {
		res, err := experiment.Fig4(context.Background(), benchRunner())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	// Figure 4's shape check: clusters at the smallest and largest Tx.
	if len(last.Series) > 0 {
		b.ReportMetric(last.Series[0].Y[0], "clusters_tx10")
		b.ReportMetric(last.Series[0].Y[len(last.X)-1], "clusters_tx250")
	}
}

// BenchmarkFig5SparseDensity regenerates Figure 5: CH changes vs Tx on the
// sparser 1000x1000 m scenario.
func BenchmarkFig5SparseDensity(b *testing.B) {
	runExperimentBench(b, experiment.Fig5)
}

// BenchmarkFig6aMobilityPT0 regenerates Figure 6(a): CH changes vs MaxSpeed
// at Tx 250 m, PT = 0.
func BenchmarkFig6aMobilityPT0(b *testing.B) {
	runExperimentBench(b, experiment.Fig6a)
}

// BenchmarkFig6bMobilityPT30 regenerates Figure 6(b): PT = 30 s.
func BenchmarkFig6bMobilityPT30(b *testing.B) {
	runExperimentBench(b, experiment.Fig6b)
}

// BenchmarkAblationCCI regenerates A1: the CCI ablation.
func BenchmarkAblationCCI(b *testing.B) {
	runExperimentBench(b, experiment.AblateCCI)
}

// BenchmarkAblationLCC regenerates A2: aggressive Lowest-ID vs LCC.
func BenchmarkAblationLCC(b *testing.B) {
	runExperimentBench(b, experiment.AblateLCC)
}

// BenchmarkAblationHistory regenerates A3: EWMA history smoothing.
func BenchmarkAblationHistory(b *testing.B) {
	runExperimentBench(b, experiment.AblateHistory)
}

// BenchmarkAdaptiveBI regenerates A4: mobility-adaptive beacon intervals.
func BenchmarkAdaptiveBI(b *testing.B) {
	runExperimentBench(b, experiment.AdaptiveBIExp)
}

// BenchmarkMaxConnectivity regenerates A6: the max-degree baseline.
func BenchmarkMaxConnectivity(b *testing.B) {
	runExperimentBench(b, experiment.MaxDegree)
}

// BenchmarkPropagationSensitivity regenerates A7: channel-model sensitivity.
func BenchmarkPropagationSensitivity(b *testing.B) {
	runExperimentBench(b, experiment.Propagation)
}

// BenchmarkLossRobustness regenerates A8: hello-loss robustness.
func BenchmarkLossRobustness(b *testing.B) {
	runExperimentBench(b, experiment.Loss)
}

// BenchmarkClusterFlooding regenerates A9: flat vs cluster-based flooding.
func BenchmarkClusterFlooding(b *testing.B) {
	b.ReportAllocs()
	var last *experiment.Result
	for i := 0; i < b.N; i++ {
		res, err := experiment.Flooding(context.Background(), benchRunner())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if len(last.Series) >= 2 {
		lastX := len(last.X) - 1
		b.ReportMetric(last.Series[0].Y[lastX], "flat_tx")
		b.ReportMetric(last.Series[1].Y[lastX], "cluster_tx")
	}
}

// BenchmarkRouteLifetime regenerates A10: backbone route lifetime and
// discovery cost over LCC vs MOBIC clusters.
func BenchmarkRouteLifetime(b *testing.B) {
	b.ReportAllocs()
	var last *experiment.Result
	for i := 0; i < b.N; i++ {
		res, err := experiment.Routes(context.Background(), benchRunner())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if len(last.Series) >= 2 {
		lastX := len(last.X) - 1
		b.ReportMetric(last.Series[0].Y[lastX], "lcc_route_life_s")
		b.ReportMetric(last.Series[1].Y[lastX], "mobic_route_life_s")
	}
}

// BenchmarkCBRPRouting regenerates A11: the CBRP-lite routing protocol over
// LCC vs MOBIC clusters.
func BenchmarkCBRPRouting(b *testing.B) {
	b.ReportAllocs()
	var last *experiment.Result
	for i := 0; i < b.N; i++ {
		res, err := experiment.CBRP(context.Background(), benchRunner())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if len(last.Series) >= 2 {
		lastX := len(last.X) - 1
		b.ReportMetric(last.Series[0].Y[lastX], "lcc_pdr_%")
		b.ReportMetric(last.Series[1].Y[lastX], "mobic_pdr_%")
	}
}

// BenchmarkOracleMetric regenerates A12: RxPr metric vs GPS oracle.
func BenchmarkOracleMetric(b *testing.B) {
	runExperimentBench(b, experiment.Oracle)
}

// BenchmarkMACCollisions regenerates A13: beacon-collision sensitivity.
func BenchmarkMACCollisions(b *testing.B) {
	runExperimentBench(b, experiment.MAC)
}

// BenchmarkScenarioHighway measures the Section 5 highway scenario (A5).
func BenchmarkScenarioHighway(b *testing.B) {
	s := mobic.Scenario{
		Nodes:    40,
		Width:    3000,
		Duration: 300,
		TxRange:  250,
		Seed:     7,
		Mobility: mobic.MobilitySpec{
			Model: "highway", Lanes: 4, MinSpeed: 20, MaxSpeed: 33, SpeedJitter: 0.1,
		},
	}
	b.ReportAllocs()
	var lcc, mob int
	for i := 0; i < b.N; i++ {
		byAlg, err := mobic.Compare(s, "lcc", "mobic")
		if err != nil {
			b.Fatal(err)
		}
		lcc = byAlg["lcc"].ClusterheadChanges
		mob = byAlg["mobic"].ClusterheadChanges
	}
	b.ReportMetric(float64(lcc), "lcc_CH")
	b.ReportMetric(float64(mob), "mobic_CH")
}

// BenchmarkScenarioConference measures the Section 5 conference scenario (A5).
func BenchmarkScenarioConference(b *testing.B) {
	s := mobic.Scenario{
		Nodes:    60,
		Width:    60,
		Height:   60,
		Duration: 300,
		TxRange:  15,
		Seed:     11,
		Mobility: mobic.MobilitySpec{
			Model: "conference", MaxSpeed: 1.2, Pause: 45, WandererFraction: 0.25,
		},
	}
	b.ReportAllocs()
	var lcc, mob int
	for i := 0; i < b.N; i++ {
		byAlg, err := mobic.Compare(s, "lcc", "mobic")
		if err != nil {
			b.Fatal(err)
		}
		lcc = byAlg["lcc"].ClusterheadChanges
		mob = byAlg["mobic"].ClusterheadChanges
	}
	b.ReportMetric(float64(lcc), "lcc_CH")
	b.ReportMetric(float64(mob), "mobic_CH")
}

// BenchmarkSingleRun measures one full 900 s Table 1 run — the unit of work
// every sweep is built from.
func BenchmarkSingleRun(b *testing.B) {
	s := mobic.PaperScenario(250)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Seed = uint64(i + 1)
		if _, err := mobic.Run(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScalability measures simulator throughput at 4x the paper's node
// count, exercising the spatial index.
func BenchmarkScalability200Nodes(b *testing.B) {
	s := mobic.Scenario{
		Nodes:    200,
		Width:    1340, // same density as the paper's 670 m / 50 nodes
		Duration: 300,
		TxRange:  250,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Seed = uint64(i + 1)
		if _, err := mobic.Run(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServiceThroughput measures jobs/sec through the mobicd service
// queue with a stub executor, isolating the serving overhead (submission,
// queueing, store, progress events, metrics) from simulation cost. This is
// the baseline later scaling PRs (sharding, caching, multi-backend) are
// measured against.
func BenchmarkServiceThroughput(b *testing.B) {
	stub := func(ctx context.Context, spec service.JobSpec, base experiment.Runner, progress func(done, total int)) (*service.Output, error) {
		progress(1, 1)
		return &service.Output{Result: &experiment.Result{ID: "stub", Title: "stub"}}, nil
	}
	svc := service.New(service.Config{
		QueueCapacity: 1024,
		Workers:       4,
		Execute:       stub,
	})
	svc.Start()
	spec := service.JobSpec{Experiment: "fig3"}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for {
			_, err := svc.Submit(spec)
			if err == nil {
				break
			}
			if errors.Is(err, service.ErrQueueFull) {
				runtime.Gosched() // back off until workers drain the queue
				continue
			}
			b.Fatal(err)
		}
	}
	// Drain so every submitted job is counted as completed work.
	if err := svc.Shutdown(context.Background()); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
}

// BenchmarkTraceDigest measures the canonical trace-digest fold over a full
// Fig. 3 run's event stream — the fixed cost the determinism harness adds
// when recording a golden digest. The simulation runs once outside the
// timed loop; each iteration re-folds the captured events.
func BenchmarkTraceDigest(b *testing.B) {
	w := harness.Workloads()[0]
	cfg, err := w.Config(harness.Algorithms()[1], 1) // mobic
	if err != nil {
		b.Fatal(err)
	}
	var events []trace.Event
	cfg.Observer = func(ev trace.Event) { events = append(events, ev) }
	net, err := simnet.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := net.Run(); err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	var last string
	for i := 0; i < b.N; i++ {
		d := harness.NewDigester()
		for _, ev := range events {
			d.Observe(ev)
		}
		last = d.Sum()
	}
	b.StopTimer()
	if last == "" {
		b.Fatal("empty digest")
	}
	b.ReportMetric(float64(len(events)), "events")
}
